#include "core/persistence.hpp"
#include "fluid/operators.hpp"
#include "fluid/pcg.hpp"
#include "core/smart_fluidnet.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <sstream>

namespace sfn {
namespace {

/// One shared tiny offline run for all integration tests (it is the
/// expensive part; the assertions below probe different facets of it).
class SmartFluidnetIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::OfflineConfig config = core::OfflineConfig::tiny();
    requirement_ = {0.05, 60.0};
    artifacts_ = new core::OfflineArtifacts(
        core::SmartFluidnet::prepare(config, requirement_));
  }
  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  static core::OfflineArtifacts* artifacts_;
  static core::UserRequirement requirement_;
};

core::OfflineArtifacts* SmartFluidnetIntegration::artifacts_ = nullptr;
core::UserRequirement SmartFluidnetIntegration::requirement_;

TEST_F(SmartFluidnetIntegration, LibraryHasExpectedFamilySize) {
  // tiny(): 2 shallow + 4 narrow = 6; + 6 pooled = 12; + 2 dropout = 14;
  // + 2 search = 16.
  EXPECT_EQ(artifacts_->library.size(), 16u);
  for (const auto& model : artifacts_->library.models) {
    EXPECT_TRUE(modelgen::validate(model.spec).empty());
    EXPECT_GT(model.net.param_count(), 0u);
  }
}

TEST_F(SmartFluidnetIntegration, EveryModelWasMeasured) {
  for (const auto& model : artifacts_->library.models) {
    EXPECT_EQ(model.records.records.size(), 2u);  // tiny(): 2 eval problems.
    EXPECT_GT(model.mean_seconds, 0.0);
    EXPECT_TRUE(std::isfinite(model.mean_quality));
  }
}

TEST_F(SmartFluidnetIntegration, ParetoFrontIsNonDominated) {
  ASSERT_FALSE(artifacts_->pareto_ids.empty());
  for (std::size_t a : artifacts_->pareto_ids) {
    for (std::size_t b = 0; b < artifacts_->library.size(); ++b) {
      if (a == b) continue;
      const auto& ma = artifacts_->library[a];
      const auto& mb = artifacts_->library[b];
      const bool dominated = mb.mean_seconds <= ma.mean_seconds &&
                             mb.mean_quality <= ma.mean_quality &&
                             (mb.mean_seconds < ma.mean_seconds ||
                              mb.mean_quality < ma.mean_quality);
      EXPECT_FALSE(dominated) << "front model " << a << " dominated by " << b;
    }
  }
}

TEST_F(SmartFluidnetIntegration, SelectionIsBoundedAndFromPareto) {
  ASSERT_FALSE(artifacts_->selected_ids.empty());
  EXPECT_LE(artifacts_->selected_ids.size(), 5u);
  const std::set<std::size_t> pareto(artifacts_->pareto_ids.begin(),
                                     artifacts_->pareto_ids.end());
  for (std::size_t id : artifacts_->selected_ids) {
    EXPECT_TRUE(pareto.contains(id));
  }
}

TEST_F(SmartFluidnetIntegration, MlpTrainedAndPredictsProbabilities) {
  ASSERT_NE(artifacts_->predictor, nullptr);
  ASSERT_FALSE(artifacts_->mlp_curve.train_loss.empty());
  for (const auto& model : artifacts_->library.models) {
    const double p = artifacts_->predictor->predict(
        model.spec, requirement_.quality_loss, requirement_.seconds);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST_F(SmartFluidnetIntegration, QualityDatabasePopulated) {
  // tiny(): 4 db problems x (selected models) pairs.
  EXPECT_GE(artifacts_->quality_db.size(),
            4u * artifacts_->selected_ids.size());
  EXPECT_GT(artifacts_->pcg_mean_seconds, 0.0);
}

TEST_F(SmartFluidnetIntegration, AdaptiveSimulationRunsToCompletion) {
  workload::ProblemSetParams params;
  params.grid = 16;
  params.steps = 20;
  const auto problems = workload::generate_problems(2, params, 77);

  for (const auto& problem : problems) {
    const auto result = core::SmartFluidnet::simulate(problem, *artifacts_);
    EXPECT_GT(result.seconds, 0.0);
    for (std::size_t k = 0; k < result.final_density.size(); ++k) {
      ASSERT_TRUE(std::isfinite(result.final_density[k]));
    }
    if (!result.restarted_with_pcg) {
      EXPECT_EQ(result.model_per_step.size(), 20u);
    }
    // Time attribution covers every model that ran.
    std::set<std::size_t> used(result.model_per_step.begin(),
                               result.model_per_step.end());
    for (std::size_t id : used) {
      EXPECT_GT(result.seconds_per_model.at(id), 0.0);
    }
  }
}

TEST_F(SmartFluidnetIntegration, FixedModeMatchesSingleModelRun) {
  workload::ProblemSetParams params;
  params.grid = 16;
  params.steps = 8;
  const auto problems = workload::generate_problems(1, params, 88);
  const auto& model = artifacts_->library[artifacts_->selected_ids.front()];
  const auto result = core::run_fixed(problems[0], model);
  EXPECT_EQ(result.model_per_step.size(), 8u);
  EXPECT_FALSE(result.restarted_with_pcg);
  EXPECT_GT(result.final_density.sum(), 0.0);
}

TEST_F(SmartFluidnetIntegration, ArtifactsPersistenceRoundTrip) {
  const auto dir =
      std::filesystem::temp_directory_path() / "sfn_artifacts_test";
  core::save_artifacts(*artifacts_, dir);
  const auto loaded = core::load_artifacts(dir);
  std::filesystem::remove_all(dir);

  EXPECT_EQ(loaded.library.size(), artifacts_->library.size());
  EXPECT_EQ(loaded.pareto_ids, artifacts_->pareto_ids);
  EXPECT_EQ(loaded.selected_ids, artifacts_->selected_ids);
  EXPECT_EQ(loaded.quality_db.size(), artifacts_->quality_db.size());
  EXPECT_DOUBLE_EQ(loaded.pcg_mean_seconds, artifacts_->pcg_mean_seconds);
  EXPECT_DOUBLE_EQ(loaded.requirement.quality_loss,
                   requirement_.quality_loss);

  // Networks round-trip bit-exactly: same prediction on the same input.
  for (std::size_t m = 0; m < loaded.library.size(); ++m) {
    EXPECT_TRUE(loaded.library[m].spec == artifacts_->library[m].spec);
    EXPECT_DOUBLE_EQ(loaded.library[m].mean_quality,
                     artifacts_->library[m].mean_quality);
  }
  // The reloaded MLP predicts identically.
  ASSERT_NE(loaded.predictor, nullptr);
  const auto& spec = loaded.library[0].spec;
  EXPECT_FLOAT_EQ(
      static_cast<float>(loaded.predictor->predict(spec, 0.02, 5.0)),
      static_cast<float>(artifacts_->predictor->predict(spec, 0.02, 5.0)));

  // A reloaded artifact set can drive an adaptive simulation.
  workload::ProblemSetParams params;
  params.grid = 16;
  params.steps = 12;
  const auto problems = workload::generate_problems(1, params, 99);
  const auto result = core::SmartFluidnet::simulate(problems[0], loaded);
  EXPECT_GT(result.final_density.sum(), 0.0);
}

TEST_F(SmartFluidnetIntegration, ImpossibleRequirementRestartsWithPcg) {
  // Rig the artifacts so every model's predicted quality is far above an
  // impossible requirement: Algorithm 2 must escalate to the most
  // accurate model and then restart with PCG, and the session must still
  // produce a valid (exact) final frame.
  core::OfflineArtifacts rigged;
  rigged.library = artifacts_->library;
  rigged.pareto_ids = artifacts_->pareto_ids;
  rigged.selected_ids = artifacts_->selected_ids;
  rigged.scores = artifacts_->scores;
  for (const auto& [key, value] : artifacts_->quality_db.entries()) {
    rigged.quality_db.add(key, value + 10.0);  // Doom every prediction.
  }
  rigged.pcg_mean_seconds = artifacts_->pcg_mean_seconds;
  rigged.requirement = {1e-9, 60.0};  // Unreachable quality target.

  workload::ProblemSetParams params;
  params.grid = 16;
  // Enough check intervals (warmup 5 + one per 5 steps) to escalate past
  // every selected candidate (up to 5) and then restart.
  params.steps = 48;
  const auto problems = workload::generate_problems(1, params, 555);
  const auto result = core::run_adaptive(problems[0], rigged);

  EXPECT_TRUE(result.restarted_with_pcg);
  ASSERT_FALSE(result.events.empty());
  EXPECT_EQ(result.events.back().decision, runtime::Decision::kRestartPcg);
  // The PCG redo produced the exact final frame.
  fluid::PcgSolver pcg;
  const auto reference = workload::run_simulation(problems[0], &pcg);
  EXPECT_LT(fluid::quality_loss(reference.final_density,
                                result.final_density),
            1e-6);
}

TEST(Persistence, SpecRoundTrip) {
  modelgen::ArchSpec spec = modelgen::tompson_spec();
  spec.stages[1].pool = 2;
  spec.stages[1].unpool = 2;
  spec.stages[3].dropout = 0.1;
  spec.stages[2].residual = true;
  spec.name = "roundtrip";
  std::stringstream buffer;
  core::save_spec(spec, buffer);
  const auto loaded = core::load_spec(buffer);
  EXPECT_TRUE(loaded == spec);
  EXPECT_EQ(loaded.name, "roundtrip");
}

TEST(Persistence, LoadMissingDirThrows) {
  EXPECT_THROW(core::load_artifacts("/nonexistent/sfn/path"),
               std::runtime_error);
}

TEST(OfflineConfig, PresetsAreConsistent) {
  const auto tiny = core::OfflineConfig::tiny();
  const auto paper = core::OfflineConfig::paper_scale();
  EXPECT_LT(tiny.eval_problems, paper.eval_problems);
  EXPECT_EQ(paper.generation.shallow_models, 5);
  EXPECT_EQ(paper.generation.narrow_variants_per_model, 10);
  EXPECT_EQ(paper.generation.dropout_models, 18);
  EXPECT_EQ(paper.db_problems, 128);
}

}  // namespace
}  // namespace sfn
