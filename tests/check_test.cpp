// Tests for the numeric-invariant layer (util/check.hpp): the SFN_CHECK /
// SFN_DCHECK macros, the finite-scan helpers, and the SFN_CHECK_FINITE
// behaviour in both the default and -DSFN_CHECK_NUMERICS=ON builds.

#include "util/check.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace sfn::util {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(SFN_CHECK(1 + 1 == 2, "arithmetic"));
}

TEST(CheckTest, FailingCheckThrowsCheckError) {
  EXPECT_THROW(SFN_CHECK(false, "forced failure"), CheckError);
}

TEST(CheckTest, MessageCarriesExpressionFileAndDetail) {
  try {
    SFN_CHECK(2 < 1, "two is not less than one");
    FAIL() << "SFN_CHECK did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos)
        << what;
  }
}

TEST(CheckTest, DcheckActiveInProjectBuilds) {
  // The repo builds every preset without NDEBUG, so SFN_DCHECK must fire.
  EXPECT_THROW(SFN_DCHECK(false, "dcheck"), CheckError);
}

TEST(CheckTest, FirstNonFiniteFindsNanAndInf) {
  const float nan_f = std::numeric_limits<float>::quiet_NaN();
  const float inf_f = std::numeric_limits<float>::infinity();
  const std::vector<float> clean = {0.0f, -1.5f, 3.0e30f};
  EXPECT_EQ(first_non_finite(clean.data(), clean.size()), clean.size());
  EXPECT_TRUE(all_finite(clean.data(), clean.size()));

  const std::vector<float> with_nan = {1.0f, nan_f, 2.0f};
  EXPECT_EQ(first_non_finite(with_nan.data(), with_nan.size()), 1u);
  EXPECT_FALSE(all_finite(with_nan.data(), with_nan.size()));

  const std::vector<float> with_inf = {1.0f, 2.0f, -inf_f};
  EXPECT_EQ(first_non_finite(with_inf.data(), with_inf.size()), 2u);
}

TEST(CheckTest, FirstNonFiniteDoubleOverload) {
  const double nan_d = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> with_nan = {0.0, 1.0, nan_d, 3.0};
  EXPECT_EQ(first_non_finite(with_nan.data(), with_nan.size()), 2u);
  const std::vector<double> clean = {0.0, 1.0, 2.0};
  EXPECT_TRUE(all_finite(clean.data(), clean.size()));
}

TEST(CheckTest, EmptyBufferIsFinite) {
  EXPECT_TRUE(all_finite(static_cast<const float*>(nullptr), 0));
  EXPECT_TRUE(all_finite(static_cast<const double*>(nullptr), 0));
}

TEST(CheckTest, CheckFiniteOrThrowNamesOffendingIndex) {
  const float nan_f = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> data = {1.0f, 2.0f, nan_f};
  try {
    check_finite_or_throw(data.data(), data.size(), "test buffer", __FILE__,
                          __LINE__);
    FAIL() << "check_finite_or_throw did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test buffer"), std::string::npos) << what;
    EXPECT_NE(what.find('2'), std::string::npos) << what;  // index of the NaN
  }
}

TEST(CheckTest, CheckFiniteOrThrowPassesOnCleanData) {
  const std::vector<double> data = {1.0, -2.0, 0.0};
  EXPECT_NO_THROW(check_finite_or_throw(data.data(), data.size(), "clean",
                                        __FILE__, __LINE__));
}

TEST(CheckTest, CheckFiniteMacroMatchesBuildMode) {
  const float nan_f = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> data = {nan_f};
#ifdef SFN_CHECK_NUMERICS
  EXPECT_THROW(SFN_CHECK_FINITE(data.data(), data.size(), "macro"),
               CheckError);
#else
  // Compiled out in default builds: non-finite data passes through.
  EXPECT_NO_THROW(SFN_CHECK_FINITE(data.data(), data.size(), "macro"));
#endif
}

}  // namespace
}  // namespace sfn::util
