#include "quality/features.hpp"
#include "quality/mlp.hpp"
#include "quality/records.hpp"
#include "quality/selector.hpp"

#include <gtest/gtest.h>

namespace sfn {
namespace {

using quality::ExecutionRecord;
using quality::MlpSample;
using quality::MlpTopology;
using quality::ModelRecords;

TEST(Features, VectorHas48Components) {
  EXPECT_EQ(quality::kFeatureDim, 48);
  const auto f =
      quality::encode_features(modelgen::tompson_spec(), 0.01, 5.0);
  EXPECT_EQ(f.size(), 48u);
}

TEST(Features, LayoutMatchesEq6) {
  quality::FeatureScale scale;
  scale.max_quality = 1.0;
  scale.max_time = 1.0;
  scale.max_layers = 1.0;
  scale.max_kernel = 1.0;
  scale.max_channels = 1.0;
  scale.max_pool = 1.0;
  modelgen::ArchSpec spec;
  spec.stages = {modelgen::StageSpec{.kernel = 3,
                                     .channels = 8,
                                     .pool = 2,
                                     .unpool = 2,
                                     .residual = true}};
  const auto f = quality::encode_features(spec, 0.5, 2.0, scale);
  EXPECT_FLOAT_EQ(f[0], 0.5f);              // q.
  EXPECT_FLOAT_EQ(f[1], 2.0f);              // t.
  EXPECT_FLOAT_EQ(f[2], 2.0f);              // layers (stage + projection).
  EXPECT_FLOAT_EQ(f[3], 3.0f);              // kernel of stage 0.
  EXPECT_FLOAT_EQ(f[3 + 9], 8.0f);          // channels.
  EXPECT_FLOAT_EQ(f[3 + 18], 2.0f);         // pool.
  EXPECT_FLOAT_EQ(f[3 + 27], 2.0f);         // unpool.
  EXPECT_FLOAT_EQ(f[3 + 36], 1.0f);         // residual flag.
  // Unused slots are zero-padded.
  EXPECT_FLOAT_EQ(f[4], 0.0f);
  EXPECT_FLOAT_EQ(f[47], 0.0f);
}

TEST(Features, DifferentSpecsDiffer) {
  const auto a =
      quality::encode_features(modelgen::tompson_spec(), 0.01, 5.0);
  const auto b = quality::encode_features(modelgen::yang_spec(), 0.01, 5.0);
  EXPECT_NE(a, b);
}

TEST(Records, SuccessRateCountsBothRequirements) {
  ModelRecords records;
  records.records = {
      {0.01, 1.0},  // Meets q=0.02, t=2.
      {0.03, 1.0},  // Fails quality.
      {0.01, 3.0},  // Fails time.
      {0.02, 2.0},  // Meets exactly (<=).
  };
  EXPECT_DOUBLE_EQ(records.success_rate(0.02, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(records.success_rate(1.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(records.success_rate(0.0, 0.0), 0.0);
}

TEST(Records, EmptyRecordsRateZero) {
  const ModelRecords records;
  EXPECT_DOUBLE_EQ(records.success_rate(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(records.mean_quality_loss(), 0.0);
}

TEST(Records, Means) {
  ModelRecords records;
  records.records = {{0.01, 1.0}, {0.03, 3.0}};
  EXPECT_DOUBLE_EQ(records.mean_quality_loss(), 0.02);
  EXPECT_DOUBLE_EQ(records.mean_seconds(), 2.0);
}

TEST(Records, SampleGenerationLabelsAreConsistent) {
  ModelRecords model;
  model.model_id = 0;
  model.records = {{0.01, 1.0}, {0.02, 2.0}, {0.05, 0.5}};
  util::Rng rng(1);
  const auto samples = quality::generate_mlp_samples({model}, 50, rng);
  ASSERT_EQ(samples.size(), 50u);
  for (const auto& s : samples) {
    EXPECT_DOUBLE_EQ(s.label, model.success_rate(s.q, s.t));
    EXPECT_GE(s.label, 0.0);
    EXPECT_LE(s.label, 1.0);
  }
}

TEST(Mlp, TopologiesMatchPaper) {
  using quality::mlp_layer_widths;
  EXPECT_EQ(mlp_layer_widths(MlpTopology::kMlp1),
            (std::vector<int>{48, 32, 16, 1}));
  EXPECT_EQ(mlp_layer_widths(MlpTopology::kMlp2),
            (std::vector<int>{48, 32, 16, 8, 1}));
  EXPECT_EQ(mlp_layer_widths(MlpTopology::kMlp3),
            (std::vector<int>{48, 32, 32, 16, 8, 1}));
  EXPECT_EQ(mlp_layer_widths(MlpTopology::kMlp4),
            (std::vector<int>{48, 64, 32, 32, 16, 8, 1}));
  EXPECT_EQ(mlp_layer_widths(MlpTopology::kMlp5),
            (std::vector<int>{48, 64, 64, 32, 32, 16, 8, 1}));
}

TEST(Mlp, OutputIsProbability) {
  util::Rng rng(2);
  auto net = quality::build_mlp(MlpTopology::kMlp3, rng);
  nn::Tensor x(nn::Shape{1, 1, quality::kFeatureDim}, 0.3f);
  const auto y = net.forward(x, false);
  EXPECT_EQ(y.numel(), 1u);
  EXPECT_GT(y[0], 0.0f);
  EXPECT_LT(y[0], 1.0f);
}

TEST(Mlp, TrainingLearnsSeparableRule) {
  // Two specs: a "good" one that always succeeds when q is loose and a
  // "bad" one that never does. The MLP must rank them correctly.
  std::vector<modelgen::ArchSpec> specs = {modelgen::tompson_spec(),
                                           modelgen::yang_spec()};
  std::vector<MlpSample> samples;
  util::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    MlpSample s;
    s.model_id = static_cast<std::size_t>(i % 2);
    s.q = rng.uniform(0.0, 0.1);
    s.t = rng.uniform(0.0, 10.0);
    s.label = s.model_id == 0 ? 0.9 : 0.1;
    samples.push_back(s);
  }
  quality::MlpTrainParams params;
  params.epochs = 40;
  const auto result = quality::train_mlp(MlpTopology::kMlp3, specs, samples,
                                         params, rng);
  EXPECT_GT(result.predictor.predict(specs[0], 0.05, 5.0), 0.7);
  EXPECT_LT(result.predictor.predict(specs[1], 0.05, 5.0), 0.3);
  // Loss decreased over training.
  ASSERT_GE(result.curve.train_loss.size(), 2u);
  EXPECT_LT(result.curve.train_loss.back(),
            result.curve.train_loss.front());
}

TEST(Mlp, TrainRejectsBadInput) {
  std::vector<modelgen::ArchSpec> specs = {modelgen::tompson_spec()};
  util::Rng rng(4);
  EXPECT_THROW(quality::train_mlp(MlpTopology::kMlp1, specs, {}, {}, rng),
               std::invalid_argument);
  MlpSample bad;
  bad.model_id = 5;  // No such spec.
  EXPECT_THROW(
      quality::train_mlp(MlpTopology::kMlp1, specs, {bad}, {}, rng),
      std::invalid_argument);
}

TEST(Selector, Eq8Semantics) {
  // T_total = r * T_model + (1 - r) * T_pcg.
  EXPECT_DOUBLE_EQ(quality::expected_total_seconds(1.0, 2.0, 100.0), 2.0);
  EXPECT_DOUBLE_EQ(quality::expected_total_seconds(0.0, 2.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(quality::expected_total_seconds(0.5, 2.0, 100.0), 51.0);
}

TEST(Selector, SelectsOnlyExpectedWinners) {
  // Model 0 usually succeeds (label 0.95); model 1 usually fails (0.3),
  // so Eq. 8 charges it most of the PCG restart cost.
  std::vector<modelgen::ArchSpec> specs = {modelgen::tompson_spec(),
                                           modelgen::yang_spec()};
  std::vector<MlpSample> samples;
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    MlpSample s;
    s.model_id = static_cast<std::size_t>(i % 2);
    s.q = rng.uniform(0.0, 0.1);
    s.t = rng.uniform(0.0, 10.0);
    s.label = s.model_id == 0 ? 0.95 : 0.3;
    samples.push_back(s);
  }
  quality::MlpTrainParams params;
  params.epochs = 60;
  auto result =
      quality::train_mlp(MlpTopology::kMlp1, specs, samples, params, rng);

  // T0 ~ 0.9*1 + 0.1*50 ~ 6 < 15 (selected); T1 ~ 0.35*9 + 0.65*50 ~ 36
  // > 15 (rejected) — robust to moderate MLP fit error.
  const auto scores = quality::select_models(
      result.predictor, specs, {1.0, 9.0}, /*pcg_seconds=*/50.0,
      /*q=*/0.05, /*t=*/15.0);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_TRUE(scores[0].selected);
  EXPECT_FALSE(scores[1].selected);
}

TEST(Selector, CapsSelectionCount) {
  std::vector<modelgen::ArchSpec> specs(8, modelgen::tompson_spec());
  std::vector<MlpSample> samples;
  util::Rng rng(6);
  for (int i = 0; i < 160; ++i) {
    MlpSample s;
    s.model_id = static_cast<std::size_t>(i % 8);
    s.q = rng.uniform(0.0, 0.1);
    s.t = rng.uniform(0.0, 10.0);
    s.label = 1.0;
    samples.push_back(s);
  }
  quality::MlpTrainParams params;
  params.epochs = 20;
  auto result =
      quality::train_mlp(MlpTopology::kMlp1, specs, samples, params, rng);
  const auto scores = quality::select_models(
      result.predictor, specs, std::vector<double>(8, 0.1),
      /*pcg_seconds=*/1.0, 0.05, 100.0, /*max_selected=*/5);
  int selected = 0;
  for (const auto& s : scores) {
    if (s.selected) ++selected;
  }
  EXPECT_EQ(selected, 5);
}

}  // namespace
}  // namespace sfn
