#include "fluid/operators.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sfn {
namespace {

using fluid::CellType;
using fluid::FlagGrid;
using fluid::GridF;
using fluid::MacGrid2;

FlagGrid open_box(int n) {
  FlagGrid flags(n, n, CellType::kFluid);
  flags.set_smoke_box_boundary();
  return flags;
}

TEST(Operators, DivergenceOfConstantFieldIsZero) {
  const FlagGrid flags = open_box(8);
  MacGrid2 vel(8, 8);
  vel.fill(3.0f, -2.0f);
  GridF div(8, 8, 0.0f);
  fluid::divergence(vel, flags, &div);
  for (int j = 0; j < 8; ++j) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_FLOAT_EQ(div(i, j), 0.0f) << i << "," << j;
    }
  }
}

TEST(Operators, DivergenceOfLinearExpansion) {
  // u = x (in face indices) gives divergence exactly 1 per cell.
  const FlagGrid flags = open_box(8);
  MacGrid2 vel(8, 8);
  for (int j = 0; j < 8; ++j) {
    for (int i = 0; i <= 8; ++i) {
      vel.u()(i, j) = static_cast<float>(i);
    }
  }
  GridF div(8, 8, 0.0f);
  fluid::divergence(vel, flags, &div);
  EXPECT_FLOAT_EQ(div(3, 3), 1.0f);
  EXPECT_FLOAT_EQ(div(5, 2), 1.0f);
  // Non-fluid cells report zero.
  EXPECT_FLOAT_EQ(div(0, 0), 0.0f);
}

TEST(Operators, LaplacianOfConstantIsZeroInInterior) {
  const FlagGrid flags = open_box(8);
  GridF p(8, 8, 5.0f);
  GridF out(8, 8, 0.0f);
  fluid::apply_pressure_laplacian(p, flags, &out);
  // Interior cell with 4 fluid neighbours: 4*5 - 4*5 = 0.
  EXPECT_FLOAT_EQ(out(4, 4), 0.0f);
  // Cell adjacent to the empty top row keeps a Dirichlet penalty:
  // diag 4 * 5 - 3 * 5 (one neighbour empty) = 5.
  EXPECT_FLOAT_EQ(out(4, 6), 5.0f);
  // Cell next to a solid wall: diag 3 * 5 - 3 * 5 = 0 (Neumann).
  EXPECT_FLOAT_EQ(out(1, 3), 0.0f);
}

TEST(Operators, LaplacianMatchesManualStencil) {
  const FlagGrid flags = open_box(6);
  GridF p(6, 6, 0.0f);
  util::Rng rng(3);
  for (int j = 1; j < 5; ++j) {
    for (int i = 1; i < 5; ++i) {
      p(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  GridF out(6, 6, 0.0f);
  fluid::apply_pressure_laplacian(p, flags, &out);
  // Fully interior cell (3,3): all neighbours fluid.
  const float expected = 4.0f * p(3, 3) - p(2, 3) - p(4, 3) - p(3, 2) -
                         p(3, 4);
  EXPECT_NEAR(out(3, 3), expected, 1e-5f);
}

TEST(Operators, LaplacianIsSymmetric) {
  // <A x, y> == <x, A y> over fluid cells — required for PCG and for the
  // DivNorm gradient derivation.
  FlagGrid flags = open_box(10);
  flags.set(4, 4, CellType::kSolid);
  flags.set(5, 4, CellType::kSolid);
  util::Rng rng(11);
  GridF x(10, 10, 0.0f);
  GridF y(10, 10, 0.0f);
  for (int j = 0; j < 10; ++j) {
    for (int i = 0; i < 10; ++i) {
      if (flags.is_fluid(i, j)) {
        x(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
        y(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
    }
  }
  GridF ax(10, 10, 0.0f);
  GridF ay(10, 10, 0.0f);
  fluid::apply_pressure_laplacian(x, flags, &ax);
  fluid::apply_pressure_laplacian(y, flags, &ay);
  double axy = 0.0;
  double xay = 0.0;
  for (int j = 0; j < 10; ++j) {
    for (int i = 0; i < 10; ++i) {
      if (flags.is_fluid(i, j)) {
        axy += static_cast<double>(ax(i, j)) * y(i, j);
        xay += static_cast<double>(x(i, j)) * ay(i, j);
      }
    }
  }
  EXPECT_NEAR(axy, xay, 1e-4);
}

TEST(Operators, GradientSubtractionMatchesLaplacian) {
  // div(u - grad p) == div(u) + A p with A the negated flag-aware
  // Laplacian (so solving A p = -div makes the projected field exactly
  // divergence-free). Verify on a random pressure field with obstacles.
  FlagGrid flags = open_box(12);
  flags.set(6, 6, CellType::kSolid);
  util::Rng rng(5);
  MacGrid2 vel(12, 12);
  for (std::size_t k = 0; k < vel.u().size(); ++k) {
    vel.u()[k] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t k = 0; k < vel.v().size(); ++k) {
    vel.v()[k] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  vel.enforce_solid_boundaries(flags);

  GridF p(12, 12, 0.0f);
  for (int j = 0; j < 12; ++j) {
    for (int i = 0; i < 12; ++i) {
      if (flags.is_fluid(i, j)) {
        p(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
    }
  }

  GridF div_before(12, 12, 0.0f);
  fluid::divergence(vel, flags, &div_before);
  GridF ap(12, 12, 0.0f);
  fluid::apply_pressure_laplacian(p, flags, &ap);

  fluid::subtract_pressure_gradient(p, flags, &vel);
  vel.enforce_solid_boundaries(flags);
  GridF div_after(12, 12, 0.0f);
  fluid::divergence(vel, flags, &div_after);

  for (int j = 0; j < 12; ++j) {
    for (int i = 0; i < 12; ++i) {
      if (flags.is_fluid(i, j)) {
        EXPECT_NEAR(div_after(i, j), div_before(i, j) + ap(i, j), 1e-4f)
            << i << "," << j;
      }
    }
  }
}

TEST(Operators, DivNormWeightsSolidProximity) {
  const FlagGrid flags = open_box(8);
  const auto dist = fluid::solid_distance_field(flags);
  MacGrid2 vel(8, 8);
  // Unit divergence in one near-wall cell vs one interior cell.
  MacGrid2 near_wall(8, 8);
  near_wall.u()(2, 1) = 1.0f;  // div = 1 in cell (1,1), dist 1 -> w = 2.
  MacGrid2 interior(8, 8);
  interior.u()(5, 4) = 1.0f;   // div contributions at cells (4,4) & (5,4).
  // open_box(8) has 6x6 = 36 fluid cells; div_norm normalises by them.
  const double kFluidCells = 36.0;
  const double dn_wall = fluid::div_norm(near_wall, flags, dist, 3);
  // Cells (1,1) and (2,1) both sit one cell from a wall: w = 2 each, and
  // each carries |div| = 1. Total 2 + 2 = 4, over 36 cells.
  EXPECT_NEAR(dn_wall, 4.0 / kFluidCells, 1e-9);
  const double dn_interior = fluid::div_norm(interior, flags, dist, 3);
  // Cells (4,4) and (5,4) are >= distance 3 from solids: w = 1 each.
  EXPECT_NEAR(dn_interior, 2.0 / kFluidCells, 1e-9);
}

TEST(Operators, DivNormZeroForDivergenceFree) {
  const FlagGrid flags = open_box(8);
  const auto dist = fluid::solid_distance_field(flags);
  MacGrid2 vel(8, 8);
  vel.fill(1.0f, 1.0f);
  vel.enforce_solid_boundaries(flags);
  // Constant interior field is divergence-free except near pinned faces.
  // Use a fully zero field for the exact-zero assertion.
  MacGrid2 zero(8, 8);
  EXPECT_DOUBLE_EQ(fluid::div_norm(zero, flags, dist, 3), 0.0);
}

TEST(Operators, MaxDivergence) {
  const FlagGrid flags = open_box(8);
  MacGrid2 vel(8, 8);
  vel.u()(4, 4) = 2.0f;  // div(3,4) = +2, div(4,4) = -2.
  EXPECT_DOUBLE_EQ(fluid::max_divergence(vel, flags), 2.0);
}

TEST(Operators, QualityLossMeanAbsoluteDifference) {
  GridF a(4, 4, 1.0f);
  GridF b(4, 4, 1.0f);
  b(0, 0) = 2.0f;   // |diff| = 1.
  b(1, 0) = 0.5f;   // |diff| = 0.5.
  EXPECT_NEAR(fluid::quality_loss(a, b), 1.5 / 16.0, 1e-9);
}

TEST(Operators, QualityLossSizeMismatchThrows) {
  const GridF a(4, 4, 0.0f);
  const GridF b(5, 4, 0.0f);
  EXPECT_THROW(fluid::quality_loss(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace sfn
