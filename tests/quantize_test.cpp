// Tests for the quantized inference family (DESIGN.md §13): bf16/int8
// numeric round-trip bounds, bounded end-to-end conv error versus the
// float reference, and the measured-quality admission gate that decides
// whether a quantized clone may join the runtime candidate ladder.

#include "core/quant_admission.hpp"
#include "core/session.hpp"
#include "modelgen/transform_ops.hpp"
#include "nn/conv2d.hpp"
#include "nn/kernels/microkernel.hpp"
#include "nn/kernels/pack.hpp"
#include "nn/workspace.hpp"
#include "serve_test_support.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace {

using namespace sfn;
using nn::Shape;
using nn::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(shape);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

TEST(QuantizeNumerics, Bf16RoundTripIsBounded) {
  // bfloat16 keeps 8 significand bits, so round-to-nearest-even loses at
  // most 2^-9 relative; exact powers of two round-trip losslessly.
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float back = nn::kernels::bf16_to_f32(nn::kernels::f32_to_bf16(v));
    ASSERT_LE(std::abs(back - v), std::abs(v) * (1.0f / 256.0f) + 1e-30f)
        << "v=" << v;
  }
  for (const float exact : {0.0f, 1.0f, -2.0f, 0.5f, 256.0f, -0.125f}) {
    EXPECT_EQ(exact,
              nn::kernels::bf16_to_f32(nn::kernels::f32_to_bf16(exact)));
  }
}

TEST(QuantizeNumerics, Int8WeightRoundTripIsBounded) {
  // Symmetric per-output-channel quantization: |w - q*scale| <= scale/2.
  const int out_c = 7, K = 27;
  util::Rng rng(11);
  std::vector<float> weights(static_cast<std::size_t>(out_c) * K);
  std::vector<float> bias(out_c, 0.0f);
  for (auto& w : weights) w = static_cast<float>(rng.uniform(-2.0, 2.0));

  const auto pack = nn::kernels::pack_conv_weights(
      weights.data(), bias.data(), out_c, K, nn::Precision::kInt8, 1);
  ASSERT_EQ(static_cast<int>(pack.wscale.size()),
            pack.panels * nn::kernels::kMr);
  for (int row = 0; row < out_c; ++row) {
    const int p = row / nn::kernels::kMr;
    const int r = row % nn::kernels::kMr;
    const float scale = pack.wscale[static_cast<std::size_t>(p) *
                                        nn::kernels::kMr +
                                    r];
    ASSERT_GT(scale, 0.0f);
    for (int col = 0; col < K; ++col) {
      const float w = weights[static_cast<std::size_t>(row) * K + col];
      const std::int8_t q =
          pack.a_i8[pack.panel_offset(p, nn::kernels::kMr) +
                    static_cast<std::size_t>(col) * nn::kernels::kMr + r];
      ASSERT_LE(std::abs(w - static_cast<float>(q) * scale),
                scale * 0.5f + 1e-6f)
          << "row=" << row << " col=" << col;
    }
  }
}

TEST(QuantizeNumerics, Int8ConvErrorIsBounded) {
  // Weights are 8-bit per channel and activations 8-bit per tensor, so
  // the conv output should track the float reference to a few percent.
  nn::Workspace ws;
  for (const bool residual : {false, true}) {
    nn::Conv2D conv(8, 8, 3, residual);
    const Tensor input =
        random_tensor(Shape{8, 24, 24}, 0x128u + (residual ? 1u : 0u));
    Tensor reference;
    Tensor quantized;
    conv.forward_naive_into(input, reference);
    conv.forward_packed_into(input, quantized, ws, nn::Precision::kInt8);
    ASSERT_EQ(reference.shape(), quantized.shape());
    for (std::size_t i = 0; i < reference.numel(); ++i) {
      const double tol = 0.05 * std::max(1.0, static_cast<double>(std::abs(reference[i])));
      ASSERT_NEAR(reference[i], quantized[i], tol) << "at " << i;
    }
  }
}

TEST(QuantizeNumerics, Bf16ConvErrorIsBounded) {
  nn::Workspace ws;
  nn::Conv2D conv(8, 8, 3, /*residual=*/true);
  const Tensor input = random_tensor(Shape{8, 24, 24}, 0xbf16);
  Tensor reference;
  Tensor quantized;
  conv.forward_naive_into(input, reference);
  conv.forward_packed_into(input, quantized, ws, nn::Precision::kBf16);
  for (std::size_t i = 0; i < reference.numel(); ++i) {
    const double tol = 0.01 * std::max(1.0, static_cast<double>(std::abs(reference[i])));
    ASSERT_NEAR(reference[i], quantized[i], tol) << "at " << i;
  }
}

TEST(QuantizeTransform, QuantizeTagsSpecAndName) {
  const auto base = test::make_test_artifacts().library[0].spec;
  const auto q = modelgen::quantize(base, nn::Precision::kInt8);
  EXPECT_EQ(nn::Precision::kInt8, q.precision);
  EXPECT_EQ(base.name + "+int8", q.name);
  // Architecture-wise the clone is the parent (same Eq. 6 features)...
  EXPECT_EQ(base.stages.size(), q.stages.size());
  // ...but the specs compare different, so libraries can hold both.
  EXPECT_FALSE(base == q);
  EXPECT_THROW(modelgen::quantize(base, nn::Precision::kFloat32),
               std::invalid_argument);
}

class QuantAdmission : public ::testing::Test {
 protected:
  void SetUp() override {
    artifacts_ = test::make_test_artifacts();
    workload::ProblemSetParams params;
    params.grid = 16;
    params.steps = 8;
    problems_ = workload::generate_problems(2, params, 99);
    references_ = workload::reference_runs(problems_);
    // Give the parents their honest measured quality so the gate compares
    // like with like (make_test_artifacts fills in synthetic ladder
    // positions).
    for (auto& model : artifacts_.library.models) {
      core::measure_model(&model, problems_, references_);
    }
  }

  core::OfflineArtifacts artifacts_;
  std::vector<workload::InputProblem> problems_;
  std::vector<workload::RunResult> references_;
};

TEST_F(QuantAdmission, DisabledIsANoOp) {
  core::QuantAdmissionParams params;
  params.enabled = false;
  const auto before = artifacts_.library.size();
  const auto report = core::admit_quantized_candidates(&artifacts_, problems_,
                                                       references_, params);
  EXPECT_EQ(0, report.admitted);
  EXPECT_EQ(0, report.rejected);
  EXPECT_EQ(before, artifacts_.library.size());
}

TEST_F(QuantAdmission, ImpossibleGateRejectsEveryClone) {
  core::QuantAdmissionParams params;
  params.enabled = true;
  params.max_extra_qloss = -1e9;  // Nothing can beat its parent by 1e9.
  const auto before_selected = artifacts_.selected_ids;
  const auto before_models = artifacts_.library.size();

  const auto report = core::admit_quantized_candidates(&artifacts_, problems_,
                                                       references_, params);
  EXPECT_EQ(0, report.admitted);
  EXPECT_EQ(static_cast<int>(before_selected.size() * params.precisions.size()),
            report.rejected);
  EXPECT_EQ(before_models, artifacts_.library.size());
  EXPECT_EQ(before_selected, artifacts_.selected_ids);
}

TEST_F(QuantAdmission, PermissiveGateAdmitsAlignedCandidates) {
  core::QuantAdmissionParams params;
  params.enabled = true;
  params.max_extra_qloss = 1e9;
  const auto before_models = artifacts_.library.size();
  const auto before_pareto = artifacts_.pareto_ids.size();

  const auto report = core::admit_quantized_candidates(&artifacts_, problems_,
                                                       references_, params);
  const int expected =
      static_cast<int>(2 * params.precisions.size());  // 2 parents.
  EXPECT_EQ(expected, report.admitted);
  EXPECT_EQ(0, report.rejected);
  ASSERT_EQ(before_models + expected, artifacts_.library.size());
  // pareto_ids and scores must stay index-aligned (make_runtime_candidates
  // looks probabilities up by position).
  ASSERT_EQ(artifacts_.pareto_ids.size(), artifacts_.scores.size());
  ASSERT_EQ(before_pareto + expected, artifacts_.pareto_ids.size());

  for (std::size_t i = before_models; i < artifacts_.library.size(); ++i) {
    const auto& clone = artifacts_.library[i];
    EXPECT_NE(nn::Precision::kFloat32, clone.spec.precision);
    EXPECT_NE(std::string::npos, clone.origin.find("quantize("));
    EXPECT_FALSE(clone.records.records.empty()) << "clone was not measured";
  }
}

TEST_F(QuantAdmission, AdmittedCloneIsSelectableByTheController) {
  core::QuantAdmissionParams params;
  params.enabled = true;
  params.max_extra_qloss = 1e9;
  core::admit_quantized_candidates(&artifacts_, problems_, references_,
                                   params);

  const auto candidates = core::make_runtime_candidates(artifacts_);
  int quantized = 0;
  for (const auto& c : candidates) {
    if (c.precision != nn::Precision::kFloat32) {
      ++quantized;
    }
  }
  ASSERT_GT(quantized, 0) << "no quantized candidate reached the runtime";

  // End-to-end: a session planned over the extended ladder runs to
  // completion, and every step is attributed to a real candidate.
  const auto problem = test::make_test_problem(4242);
  const auto result = core::run_adaptive(problem, artifacts_);
  ASSERT_EQ(static_cast<std::size_t>(problem.steps),
            result.model_per_step.size());
  for (const std::size_t id : result.model_per_step) {
    ASSERT_TRUE(id == core::SessionResult::kPcgModelId ||
                id < artifacts_.library.size());
  }
}

}  // namespace
