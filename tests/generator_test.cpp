#include "modelgen/generator.hpp"
#include "modelgen/search.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sfn {
namespace {

using modelgen::ArchSpec;
using modelgen::GenerationParams;

TEST(Generator, PaperScaleProduces128Models) {
  // §4: 5 shallow + 50 narrow = 55; + 55 pooled = 110; + 18 dropout = 128.
  util::Rng rng(1);
  const auto family = modelgen::generate_family(modelgen::tompson_spec(),
                                                GenerationParams{}, rng);
  EXPECT_EQ(family.size(), 128u);
}

TEST(Generator, OriginCountsMatchRecipe) {
  util::Rng rng(2);
  const auto family = modelgen::generate_family(modelgen::tompson_spec(),
                                                GenerationParams{}, rng);
  int shallow = 0, narrow = 0, pooling = 0, dropout = 0;
  for (const auto& m : family) {
    if (m.origin == "shallow") ++shallow;
    if (m.origin == "narrow") ++narrow;
    if (m.origin == "pooling") ++pooling;
    if (m.origin == "dropout") ++dropout;
  }
  EXPECT_EQ(shallow, 5);
  EXPECT_EQ(narrow, 50);
  EXPECT_EQ(pooling, 55);
  EXPECT_EQ(dropout, 18);
}

TEST(Generator, AllGeneratedSpecsAreValid) {
  util::Rng rng(3);
  const auto family = modelgen::generate_family(modelgen::tompson_spec(),
                                                GenerationParams{}, rng);
  for (const auto& m : family) {
    EXPECT_TRUE(modelgen::validate(m.spec).empty()) << m.spec.describe();
  }
}

TEST(Generator, NamesAreUnique) {
  util::Rng rng(4);
  const auto family = modelgen::generate_family(modelgen::tompson_spec(),
                                                GenerationParams{}, rng);
  std::set<std::string> names;
  for (const auto& m : family) {
    names.insert(m.spec.name);
  }
  EXPECT_EQ(names.size(), family.size());
}

TEST(Generator, DeterministicForSameSeed) {
  util::Rng a(5);
  util::Rng b(5);
  const auto fa = modelgen::generate_family(modelgen::tompson_spec(),
                                            GenerationParams{}, a);
  const auto fb = modelgen::generate_family(modelgen::tompson_spec(),
                                            GenerationParams{}, b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_TRUE(fa[i].spec == fb[i].spec) << i;
  }
}

TEST(Generator, ScaledDownParamsScaleCounts) {
  GenerationParams params;
  params.shallow_models = 2;
  params.narrow_variants_per_model = 3;
  params.dropout_models = 4;
  util::Rng rng(6);
  const auto family = modelgen::generate_family(modelgen::tompson_spec(),
                                                params, rng);
  // 2 shallow + 6 narrow = 8; + 8 pooled = 16; + 4 dropout = 20.
  EXPECT_EQ(family.size(), 20u);
}

TEST(Generator, ShallowModelsAreShallowerThanBase) {
  util::Rng rng(7);
  const auto family = modelgen::generate_family(modelgen::tompson_spec(),
                                                GenerationParams{}, rng);
  for (const auto& m : family) {
    if (m.origin == "shallow") {
      EXPECT_EQ(m.spec.stages.size(),
                modelgen::tompson_spec().stages.size() - 1);
    }
  }
}

TEST(Search, MorphismsAlwaysValid) {
  util::Rng rng(8);
  modelgen::SearchParams params;
  ArchSpec spec = modelgen::tompson_spec();
  for (int i = 0; i < 200; ++i) {
    spec = modelgen::propose_morphism(spec, params, rng);
    ASSERT_TRUE(modelgen::validate(spec).empty()) << spec.describe();
    ASSERT_LE(static_cast<int>(spec.stages.size()), params.max_stages);
    for (const auto& s : spec.stages) {
      ASSERT_LE(s.channels, params.max_channels);
      ASSERT_LE(s.kernel, 5);
    }
  }
}

TEST(Search, FindsLowerObjective) {
  // Objective rewards channel width: the climb must widen the net.
  util::Rng rng(9);
  modelgen::SearchParams params;
  params.models = 3;
  params.rounds = 10;
  const auto objective = [](const ArchSpec& spec) {
    double total = 0.0;
    for (const auto& s : spec.stages) {
      total += s.channels;
    }
    return 1000.0 - total;
  };
  const ArchSpec base = modelgen::tompson_spec();
  const auto best =
      modelgen::search_accurate_models(base, params, objective, rng);
  ASSERT_EQ(best.size(), 3u);
  EXPECT_LT(objective(best[0]), objective(base));
  // Results are sorted by objective.
  EXPECT_LE(objective(best[0]), objective(best[1]));
  EXPECT_LE(objective(best[1]), objective(best[2]));
}

TEST(Search, ReturnsDistinctModels) {
  util::Rng rng(10);
  modelgen::SearchParams params;
  params.models = 4;
  const auto objective = [](const ArchSpec& spec) {
    return static_cast<double>(spec.stages.size());
  };
  const auto best = modelgen::search_accurate_models(
      modelgen::tompson_spec(), params, objective, rng);
  for (std::size_t i = 0; i < best.size(); ++i) {
    for (std::size_t j = i + 1; j < best.size(); ++j) {
      EXPECT_FALSE(best[i] == best[j]) << i << " vs " << j;
    }
  }
}

}  // namespace
}  // namespace sfn
