// Determinism layer for the serving engine: the same seeded problem must
// produce bit-identical fields and identical switch-event sequences
// whether it runs solo (run_fixed / run_adaptive on the calling thread)
// or through a SessionServer with any worker count, with cross-session
// batching on or off, and under any OpenMP team size. The guarantees rest
// on the fixed-order reductions of fluid/reduce.hpp (DESIGN.md §12); this
// suite is the executable statement of that contract.

#include "core/session.hpp"
#include "serve/session_server.hpp"
#include "serve_test_support.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <cstring>
#include <vector>

namespace sfn {
namespace {

/// Bitwise equality of two density fields (== on floats would let
/// -0.0 == 0.0 slip through; the contract is stronger than value
/// equality).
void expect_bit_identical(const fluid::GridF& expected,
                          const fluid::GridF& actual,
                          const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  std::size_t mismatches = 0;
  for (std::size_t k = 0; k < expected.size(); ++k) {
    const float a = expected[k];
    const float b = actual[k];
    if (std::memcmp(&a, &b, sizeof(float)) != 0) {
      ++mismatches;
      if (mismatches <= 3) {
        ADD_FAILURE() << label << ": cell " << k << " differs: " << a
                      << " vs " << b;
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << label;
}

/// Switch-event sequences must match decision-for-decision. The only
/// field excluded is seconds_offset — wall-clock, inherently noisy.
void expect_same_events(const std::vector<runtime::SwitchEvent>& expected,
                        const std::vector<runtime::SwitchEvent>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].step, actual[i].step) << label << " event " << i;
    EXPECT_EQ(expected[i].decision, actual[i].decision)
        << label << " event " << i;
    EXPECT_EQ(expected[i].from_candidate, actual[i].from_candidate)
        << label << " event " << i;
    EXPECT_EQ(expected[i].to_candidate, actual[i].to_candidate)
        << label << " event " << i;
    EXPECT_EQ(expected[i].predicted_quality, actual[i].predicted_quality)
        << label << " event " << i;
    EXPECT_EQ(expected[i].cum_div_norm, actual[i].cum_div_norm)
        << label << " event " << i;
  }
}

class ServeDeterminism : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    artifacts_ = new core::OfflineArtifacts(test::make_test_artifacts());
    for (std::uint64_t seed : {7u, 8u, 9u, 10u}) {
      problems_.push_back(test::make_test_problem(seed));
    }
    // Adversarial scenes ride through every determinism check below: a
    // rotating obstacle re-rasterises flags each step and a shear layer
    // exercises inflow/outflow faces — both must stay bit-identical
    // across worker counts, scheduler modes and OpenMP team sizes.
    problems_.push_back(workload::make_scene(
        workload::SceneFamily::kMovingObstacle, 4242, {16, 12}));
    problems_.push_back(workload::make_scene(
        workload::SceneFamily::kShearLayer, 4343, {16, 12}));
  }
  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
    problems_.clear();
  }

  static const core::TrainedModel& model() {
    return artifacts_->library[0];
  }

  static core::OfflineArtifacts* artifacts_;
  static std::vector<workload::InputProblem> problems_;
};

core::OfflineArtifacts* ServeDeterminism::artifacts_ = nullptr;
std::vector<workload::InputProblem> ServeDeterminism::problems_;

TEST_F(ServeDeterminism, FixedSessionsMatchSoloAcrossWorkerCounts) {
  std::vector<core::SessionResult> solo;
  for (const auto& problem : problems_) {
    solo.push_back(core::run_fixed(problem, model()));
  }

  for (std::size_t threads : {1u, 2u, 8u}) {
    serve::ServerConfig config;
    config.session_threads = threads;
    serve::SessionServer server(config);
    std::vector<serve::SessionServer::JobId> ids;
    for (const auto& problem : problems_) {
      ids.push_back(server.submit_fixed(problem, model()));
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto result = server.wait(ids[i]);
      const std::string label = "fixed threads=" + std::to_string(threads) +
                                " problem=" + std::to_string(i);
      expect_bit_identical(solo[i].final_density, result.final_density,
                           label);
      EXPECT_EQ(solo[i].model_per_step, result.model_per_step) << label;
    }
  }
}

TEST_F(ServeDeterminism, AdaptiveSessionsMatchSoloAcrossWorkerCounts) {
  std::vector<core::SessionResult> solo;
  for (const auto& problem : problems_) {
    solo.push_back(core::run_adaptive(problem, *artifacts_));
  }

  for (std::size_t threads : {1u, 2u, 8u}) {
    serve::ServerConfig config;
    config.session_threads = threads;
    serve::SessionServer server(config);
    std::vector<serve::SessionServer::JobId> ids;
    for (const auto& problem : problems_) {
      ids.push_back(server.submit_adaptive(problem, *artifacts_));
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto result = server.wait(ids[i]);
      const std::string label = "adaptive threads=" +
                                std::to_string(threads) +
                                " problem=" + std::to_string(i);
      expect_bit_identical(solo[i].final_density, result.final_density,
                           label);
      expect_same_events(solo[i].events, result.events, label);
      EXPECT_EQ(solo[i].model_per_step, result.model_per_step) << label;
      EXPECT_EQ(solo[i].restarted_with_pcg, result.restarted_with_pcg)
          << label;
      EXPECT_EQ(solo[i].quarantined_models, result.quarantined_models)
          << label;
    }
  }
}

TEST_F(ServeDeterminism, CoalescedAndUnbatchedAgree) {
  // The sink contract: routing inference through the coalescer must be
  // bit-identical to local inference, so batched and unbatched serving
  // configurations produce the same fields.
  serve::ServerConfig batched;
  batched.session_threads = 4;
  serve::ServerConfig unbatched = batched;
  unbatched.coalesce = false;

  serve::SessionServer a(batched);
  serve::SessionServer b(unbatched);
  std::vector<serve::SessionServer::JobId> ids_a;
  std::vector<serve::SessionServer::JobId> ids_b;
  for (const auto& problem : problems_) {
    ids_a.push_back(a.submit_adaptive(problem, *artifacts_));
    ids_b.push_back(b.submit_adaptive(problem, *artifacts_));
  }
  for (std::size_t i = 0; i < problems_.size(); ++i) {
    const auto ra = a.wait(ids_a[i]);
    const auto rb = b.wait(ids_b[i]);
    const std::string label = "coalesce problem=" + std::to_string(i);
    expect_bit_identical(ra.final_density, rb.final_density, label);
    expect_same_events(ra.events, rb.events, label);
  }
}

TEST_F(ServeDeterminism, OmpTeamSizeDoesNotChangeResults) {
  // Direct coverage of the fixed-order reductions: div_norm and the PCG
  // dot products feed CumDivNorm and the guard, so a team-size-dependent
  // accumulation order would silently change switching decisions.
  const int prev = omp_get_max_threads();
  omp_set_num_threads(1);
  const auto serial = core::run_adaptive(problems_[0], *artifacts_);
  omp_set_num_threads(4);
  const auto parallel4 = core::run_adaptive(problems_[0], *artifacts_);
  omp_set_num_threads(prev);

  expect_bit_identical(serial.final_density, parallel4.final_density,
                       "omp teams 1 vs 4");
  expect_same_events(serial.events, parallel4.events, "omp teams 1 vs 4");
}

TEST_F(ServeDeterminism, SchedulerModesAgreeBitwise) {
  // The cooperative scheduler (sessions sliced over few workers, resuming
  // on arbitrary threads) and the thread-per-session mode drive the same
  // SessionStepper, so their outputs must be bit-identical — to each
  // other and to solo runs. slice_steps=1 maximises worker migration.
  serve::ServerConfig coop;
  coop.sched = serve::ServerConfig::Sched::kCoop;
  coop.session_threads = 2;
  coop.slice_steps = 1;
  serve::ServerConfig threads = coop;
  threads.sched = serve::ServerConfig::Sched::kThreads;
  threads.session_threads = 4;

  serve::SessionServer a(coop);
  serve::SessionServer b(threads);
  std::vector<serve::SessionServer::JobId> ids_a;
  std::vector<serve::SessionServer::JobId> ids_b;
  for (const auto& problem : problems_) {
    ids_a.push_back(a.submit_adaptive(problem, *artifacts_));
    ids_b.push_back(b.submit_adaptive(problem, *artifacts_));
  }
  for (std::size_t i = 0; i < problems_.size(); ++i) {
    const auto ra = a.wait(ids_a[i]);
    const auto rb = b.wait(ids_b[i]);
    const auto solo = core::run_adaptive(problems_[i], *artifacts_);
    const std::string label = "sched problem=" + std::to_string(i);
    expect_bit_identical(solo.final_density, ra.final_density,
                         label + " coop");
    expect_bit_identical(solo.final_density, rb.final_density,
                         label + " threads");
    expect_same_events(solo.events, ra.events, label + " coop");
    expect_same_events(solo.events, rb.events, label + " threads");
    EXPECT_EQ(ra.model_per_step, rb.model_per_step) << label;
    EXPECT_EQ(ra.quarantined_models, rb.quarantined_models) << label;
  }
}

TEST_F(ServeDeterminism, RepeatedServedRunsAreStable) {
  // Same server, same problem, run twice back-to-back: per-session state
  // isolation means the first run cannot leak anything into the second.
  serve::SessionServer server;
  const auto id1 = server.submit_adaptive(problems_[1], *artifacts_);
  const auto r1 = server.wait(id1);
  const auto id2 = server.submit_adaptive(problems_[1], *artifacts_);
  const auto r2 = server.wait(id2);
  expect_bit_identical(r1.final_density, r2.final_density, "repeat");
  expect_same_events(r1.events, r2.events, "repeat");
}

}  // namespace
}  // namespace sfn
