// Serving-engine stress suite: 32 concurrent sessions on a 4-worker
// server, a fault-injecting solver decorator poisoning a subset of them,
// with cross-session batching on. Checks the isolation and bounded-ness
// claims of DESIGN.md §12: quarantine state never leaks between sessions,
// the coalescer's queue stays bounded by the worker count, shutdown
// drains without orphaning a job, and the reject overflow policy sheds
// load instead of blocking. Runs under TSan via the sanitizer CI matrix
// like every other test binary.

#include "core/session.hpp"
#include "fluid/pcg.hpp"
#include "serve/session_server.hpp"
#include "serve_test_support.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

namespace sfn {
namespace {

/// Wraps a session's pressure solver and overwrites every `every`-th
/// answer with NaN across all candidates of that session (one shared
/// counter per session), so the health guard must trip on a precise
/// cadence — and only inside the poisoned session.
class FaultingSolver final : public fluid::PoissonSolver {
 public:
  struct Shared {
    std::atomic<int> calls{0};
    std::atomic<int> injected{0};
  };

  FaultingSolver(std::unique_ptr<fluid::PoissonSolver> inner, int every,
                 std::shared_ptr<Shared> shared)
      : inner_(std::move(inner)), every_(every), shared_(std::move(shared)) {}

  fluid::SolveStats solve(const fluid::FlagGrid& flags, const fluid::GridF& rhs,
                          fluid::GridF* pressure) override {
    auto stats = inner_->solve(flags, rhs, pressure);
    if (shared_->calls.fetch_add(1) % every_ == every_ - 1) {
      shared_->injected.fetch_add(1);
      for (std::size_t k = 0; k < pressure->size(); ++k) {
        (*pressure)[k] = std::numeric_limits<float>::quiet_NaN();
      }
    }
    return stats;
  }

  [[nodiscard]] std::string name() const override { return "faulting"; }

 private:
  std::unique_ptr<fluid::PoissonSolver> inner_;
  int every_;
  std::shared_ptr<Shared> shared_;
};

core::SessionConfig faulting_config(
    std::shared_ptr<FaultingSolver::Shared> shared, int every = 2) {
  core::SessionConfig config;
  config.solver_decorator = [shared = std::move(shared), every](
                                std::size_t,
                                std::unique_ptr<fluid::PoissonSolver> inner) {
    return std::make_unique<FaultingSolver>(std::move(inner), every, shared);
  };
  return config;
}

TEST(ServeStress, FaultedSessionsNeverLeakQuarantineIntoCleanOnes) {
  const auto artifacts = test::make_test_artifacts();
  constexpr int kSessions = 32;
  constexpr int kFaulted = 8;  // Every 4th session is poisoned.

  serve::ServerConfig config;
  config.session_threads = 4;
  config.queue_capacity = kSessions;  // Admit the whole burst.
  serve::SessionServer server(config);

  std::vector<workload::InputProblem> problems;
  std::vector<std::shared_ptr<FaultingSolver::Shared>> counters(kSessions);
  std::vector<serve::SessionServer::JobId> ids;
  std::vector<bool> faulted;
  for (int i = 0; i < kSessions; ++i) {
    problems.push_back(test::make_test_problem(1000 + i, 16, 10));
    core::SessionConfig session;
    const bool poison = i % 4 == 0;
    if (poison) {
      counters[i] = std::make_shared<FaultingSolver::Shared>();
      session = faulting_config(counters[i]);
    }
    faulted.push_back(poison);
    ids.push_back(server.submit_adaptive(problems.back(), artifacts, session));
  }

  // Solo baselines for the clean sessions: leak-free isolation means a
  // clean served run is bit-identical to the same problem run alone.
  for (int i = 0; i < kSessions; ++i) {
    const auto result = server.wait(ids[i]);
    if (faulted[i]) {
      EXPECT_GT(counters[i]->injected.load(), 0) << "session " << i;
      EXPECT_GT(result.fallback_steps, 0) << "session " << i;
      EXPECT_FALSE(result.quarantined_models.empty()) << "session " << i;
    } else {
      EXPECT_EQ(result.fallback_steps, 0) << "session " << i;
      EXPECT_TRUE(result.quarantined_models.empty()) << "session " << i;
      const auto solo = core::run_adaptive(problems[i], artifacts);
      ASSERT_EQ(solo.final_density.size(), result.final_density.size());
      for (std::size_t k = 0; k < solo.final_density.size(); ++k) {
        ASSERT_EQ(solo.final_density[k], result.final_density[k])
            << "session " << i << " cell " << k;
      }
      EXPECT_EQ(solo.quarantined_models, result.quarantined_models);
    }
  }

  // Bounded-queue invariant: every running session has at most one
  // inference request in flight, so the coalescer's backlog can never
  // exceed the worker count (and the server's submission queue never
  // exceeded its configured capacity).
  EXPECT_LE(server.coalescer().queue_high_water(), config.session_threads);
  EXPECT_LE(server.queue_high_water(), config.queue_capacity);
  EXPECT_EQ(server.jobs_completed(), static_cast<std::uint64_t>(kSessions));
}

TEST(ServeStress, ShutdownDrainsWithoutOrphans) {
  const auto artifacts = test::make_test_artifacts();
  serve::ServerConfig config;
  config.session_threads = 4;
  serve::SessionServer server(config);

  std::vector<serve::SessionServer::JobId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(server.submit_adaptive(test::make_test_problem(2000 + i),
                                         artifacts));
  }
  server.shutdown();

  // Every accepted job ran to completion and stayed redeemable; nothing
  // is stuck in the coalescer; new work is refused.
  EXPECT_EQ(server.sessions_active(), 0u);
  EXPECT_EQ(server.coalescer().pending(), 0u);
  EXPECT_EQ(server.jobs_completed(), 12u);
  for (const auto id : ids) {
    const auto result = server.wait(id);
    EXPECT_GT(result.final_density.size(), 0u);
  }
  EXPECT_THROW(server.submit_adaptive(test::make_test_problem(1), artifacts),
               serve::ServerStoppedError);
}

TEST(ServeStress, RejectOverflowPolicyShedsLoadInsteadOfBlocking) {
  const auto artifacts = test::make_test_artifacts();
  serve::ServerConfig config;
  config.session_threads = 1;
  config.queue_capacity = 2;
  config.overflow = serve::ServerConfig::Overflow::kReject;
  serve::SessionServer server(config);

  // Flood far past capacity: accepted + rejected must partition the
  // burst, and every accepted job still completes and redeems.
  std::vector<serve::SessionServer::JobId> accepted;
  int rejected = 0;
  for (int i = 0; i < 16; ++i) {
    const auto id =
        server.try_submit_adaptive(test::make_test_problem(3000 + i, 16, 6),
                                   artifacts);
    if (id.has_value()) {
      accepted.push_back(*id);
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted.size() + static_cast<std::size_t>(rejected), 16u);
  EXPECT_GE(accepted.size(), 1u);
  for (const auto id : accepted) {
    EXPECT_GT(server.wait(id).final_density.size(), 0u);
  }
  EXPECT_LE(server.queue_high_water(), config.queue_capacity);
}

TEST(ServeStress, WaitRejectsUnknownAndRedeemedIds) {
  // A wait() on an id the server never issued (or already redeemed) is a
  // caller bug; it must fail loudly instead of blocking forever on a
  // result that will never arrive.
  const auto artifacts = test::make_test_artifacts();
  serve::SessionServer server;
  EXPECT_THROW(server.wait(12345), std::invalid_argument);

  const auto id =
      server.submit_fixed(test::make_test_problem(4500, 16, 4),
                          artifacts.library[0]);
  EXPECT_GT(server.wait(id).final_density.size(), 0u);
  EXPECT_THROW(server.wait(id), std::invalid_argument);
  // Id 0 is never issued (ids start at 1).
  EXPECT_THROW(server.wait(0), std::invalid_argument);
}

TEST(ServeStress, FaultedFixedSessionsStayFiniteUnderBatching) {
  // run_fixed has no guard machinery; the point here is narrower — a
  // poisoned fixed session routed through the coalescer must not corrupt
  // its neighbours' batched inferences.
  const auto artifacts = test::make_test_artifacts();
  const auto& model = artifacts.library[0];
  serve::ServerConfig config;
  config.session_threads = 4;
  serve::SessionServer server(config);

  const auto clean_problem = test::make_test_problem(4000, 16, 8);
  const auto solo = core::run_fixed(clean_problem, model);

  auto shared = std::make_shared<FaultingSolver::Shared>();
  std::vector<serve::SessionServer::JobId> clean_ids;
  for (int i = 0; i < 6; ++i) {
    server.submit_fixed(test::make_test_problem(4100 + i, 16, 8), model,
                        faulting_config(shared, /*every=*/3));
    clean_ids.push_back(server.submit_fixed(clean_problem, model));
  }
  for (const auto id : clean_ids) {
    const auto result = server.wait(id);
    ASSERT_EQ(result.final_density.size(), solo.final_density.size());
    for (std::size_t k = 0; k < result.final_density.size(); ++k) {
      ASSERT_EQ(solo.final_density[k], result.final_density[k]) << k;
    }
  }
  server.shutdown();
  EXPECT_GT(shared->injected.load(), 0);
}

}  // namespace
}  // namespace sfn
