#include "fluid/flags.hpp"
#include "fluid/grid2.hpp"
#include "fluid/mac_grid.hpp"

#include <gtest/gtest.h>

namespace sfn {
namespace {

using fluid::CellType;
using fluid::FlagGrid;
using fluid::GridF;
using fluid::MacGrid2;

TEST(Grid2, IndexingRowMajor) {
  GridF g(4, 3, 0.0f);
  g(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(g[2 * 4 + 1], 5.0f);
  EXPECT_EQ(g.nx(), 4);
  EXPECT_EQ(g.ny(), 3);
  EXPECT_EQ(g.size(), 12u);
}

TEST(Grid2, FillAndSum) {
  GridF g(5, 5, 2.0f);
  EXPECT_DOUBLE_EQ(g.sum(), 50.0);
  g.fill(0.0f);
  EXPECT_DOUBLE_EQ(g.sum(), 0.0);
}

TEST(Grid2, ClampedAccess) {
  GridF g(3, 3, 0.0f);
  g(0, 0) = 1.0f;
  g(2, 2) = 9.0f;
  EXPECT_FLOAT_EQ(g.at_clamped(-5, -5), 1.0f);
  EXPECT_FLOAT_EQ(g.at_clamped(10, 10), 9.0f);
}

TEST(Grid2, BilinearInterpolationExactAtNodes) {
  GridF g(3, 3, 0.0f);
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 3; ++i) {
      g(i, j) = static_cast<float>(i + 10 * j);
    }
  }
  EXPECT_FLOAT_EQ(g.interpolate(1.0, 2.0), 21.0f);
  // Midpoint between (0,0)=0 and (1,0)=1.
  EXPECT_FLOAT_EQ(g.interpolate(0.5, 0.0), 0.5f);
  // Bilinear reproduces linear functions exactly.
  EXPECT_FLOAT_EQ(g.interpolate(0.5, 0.5), 5.5f);
}

TEST(Grid2, InterpolationClampsOutside) {
  GridF g(2, 2, 0.0f);
  g(1, 1) = 4.0f;
  EXPECT_FLOAT_EQ(g.interpolate(100.0, 100.0), 4.0f);
  EXPECT_FLOAT_EQ(g.interpolate(-100.0, -100.0), g(0, 0));
}

TEST(Grid2, MaxAbs) {
  GridF g(3, 1, 0.0f);
  g(0, 0) = -7.0f;
  g(2, 0) = 3.0f;
  EXPECT_DOUBLE_EQ(g.max_abs(), 7.0);
}

TEST(FlagGrid, SmokeBoxBoundary) {
  FlagGrid flags(8, 8, CellType::kFluid);
  flags.set_smoke_box_boundary();
  for (int j = 0; j < 8; ++j) {
    EXPECT_TRUE(flags.is_solid(0, j));
    EXPECT_TRUE(flags.is_solid(7, j));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(flags.is_solid(i, 0));
  }
  for (int i = 1; i < 7; ++i) {
    EXPECT_TRUE(flags.is_empty(i, 7));
  }
  EXPECT_TRUE(flags.is_fluid(3, 3));
  EXPECT_EQ(flags.count_fluid(), 6 * 6);
}

TEST(FlagGrid, OutOfRangeIsSolid) {
  const FlagGrid flags(4, 4, CellType::kFluid);
  EXPECT_TRUE(flags.is_solid(-1, 0));
  EXPECT_TRUE(flags.is_solid(0, 4));
  EXPECT_FALSE(flags.is_fluid(-1, 0));
  EXPECT_FALSE(flags.is_empty(4, 4));
}

TEST(FlagGrid, DistanceFieldFromWalls) {
  FlagGrid flags(8, 8, CellType::kFluid);
  flags.set_smoke_box_boundary();
  const auto dist = fluid::solid_distance_field(flags);
  EXPECT_EQ(dist(0, 0), 0);          // Wall itself.
  EXPECT_EQ(dist(1, 1), 1);          // Adjacent to two walls.
  EXPECT_EQ(dist(3, 3), 3);          // Manhattan distance to nearest wall.
  EXPECT_EQ(dist(3, 7), 3);          // Top row is empty, not solid.
}

TEST(FlagGrid, DistanceFieldNoSolids) {
  const FlagGrid flags(4, 4, CellType::kFluid);
  const auto dist = fluid::solid_distance_field(flags);
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_GT(dist(i, j), 3);
    }
  }
}

TEST(MacGrid, Dimensions) {
  MacGrid2 vel(4, 3);
  EXPECT_EQ(vel.u().nx(), 5);
  EXPECT_EQ(vel.u().ny(), 3);
  EXPECT_EQ(vel.v().nx(), 4);
  EXPECT_EQ(vel.v().ny(), 4);
}

TEST(MacGrid, SampleConstantField) {
  MacGrid2 vel(8, 8);
  vel.fill(2.0f, -1.0f);
  for (double x : {0.7, 3.3, 7.9}) {
    for (double y : {0.2, 4.4, 7.5}) {
      const auto [u, v] = vel.sample(x, y);
      EXPECT_FLOAT_EQ(u, 2.0f);
      EXPECT_FLOAT_EQ(v, -1.0f);
    }
  }
}

TEST(MacGrid, SampleLinearFieldExact) {
  // u(x) = x is linear: MAC bilinear sampling must reproduce it exactly
  // at interior points.
  MacGrid2 vel(8, 8);
  for (int j = 0; j < 8; ++j) {
    for (int i = 0; i <= 8; ++i) {
      vel.u()(i, j) = static_cast<float>(i);
    }
  }
  const auto [u, _] = vel.sample(3.25, 4.0);
  EXPECT_NEAR(u, 3.25f, 1e-6f);
}

TEST(MacGrid, CenterAverages) {
  MacGrid2 vel(2, 2);
  vel.u()(0, 0) = 1.0f;
  vel.u()(1, 0) = 3.0f;
  vel.v()(0, 0) = -2.0f;
  vel.v()(0, 1) = 4.0f;
  const auto [u, v] = vel.at_center(0, 0);
  EXPECT_FLOAT_EQ(u, 2.0f);
  EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(MacGrid, EnforceSolidBoundaries) {
  FlagGrid flags(4, 4, CellType::kFluid);
  flags.set(1, 1, CellType::kSolid);
  MacGrid2 vel(4, 4);
  vel.fill(1.0f, 1.0f);
  vel.enforce_solid_boundaries(flags);
  // All four faces of the solid cell are zeroed.
  EXPECT_FLOAT_EQ(vel.u()(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(vel.u()(2, 1), 0.0f);
  EXPECT_FLOAT_EQ(vel.v()(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(vel.v()(1, 2), 0.0f);
  // Domain-border faces are also pinned (outside counts as solid).
  EXPECT_FLOAT_EQ(vel.u()(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(vel.u()(4, 2), 0.0f);
  // An interior fluid-fluid face keeps its velocity.
  EXPECT_FLOAT_EQ(vel.u()(3, 3), 1.0f);
}

TEST(MacGrid, MaxSpeed) {
  MacGrid2 vel(3, 3);
  vel.u()(1, 1) = -5.0f;
  vel.v()(2, 2) = 3.0f;
  EXPECT_DOUBLE_EQ(vel.max_speed(), 5.0);
}

}  // namespace
}  // namespace sfn
