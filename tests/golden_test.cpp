// Golden-trajectory regression tests: the canonical problems (three
// plumes plus one scene per adversarial family) are simulated with a
// pinned synthetic surrogate and their per-step DivNorm,
// CumDivNorm and final Qloss are checked against committed baselines in
// tests/golden/*.json. Any change to advection, projection, the reduction
// order or the telemetry plumbing that shifts the numbers the controller
// consumes shows up here as a per-metric diff table.
//
// Regenerate deliberately (after an intended numerical change) with:
//   ./golden_test --update-golden
// which rewrites the baselines through the same record/save path the
// checks use, then re-run the test without the flag.

#include "golden_support.hpp"
#include "serve_test_support.hpp"

#include <gtest/gtest.h>

#include <string>

#ifndef SFN_GOLDEN_DIR
#error "SFN_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists)"
#endif

namespace sfn::test {

/// Set by this binary's main() on --update-golden: record mode rewrites
/// every baseline instead of checking it.
bool g_update_golden = false;

namespace {

class GoldenTrajectories : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    artifacts_ = new core::OfflineArtifacts(make_test_artifacts());
  }
  static void TearDownTestSuite() {
    delete artifacts_;
    artifacts_ = nullptr;
  }

  static void run_case(const GoldenCase& which) {
    const std::string path =
        std::string(SFN_GOLDEN_DIR) + "/" + which.name + ".json";
    const auto actual =
        record_trajectory(which.name, which.problem, artifacts_->library[0]);

    if (g_update_golden) {
      save_golden(actual, path);
      GTEST_SKIP() << "updated baseline " << path;
    }

    GoldenTrajectory golden;
    try {
      golden = load_golden(path);
    } catch (const std::exception& error) {
      FAIL() << error.what();
    }
    ASSERT_EQ(golden.problem_seed, which.problem.seed)
        << "baseline was recorded for a different problem";
    ASSERT_EQ(golden.grid, which.problem.nx);

    const GoldenTolerances tol;
    util::Table diff = make_diff_table();
    if (!compare_golden(golden, actual, tol, &diff)) {
      FAIL() << "trajectory drifted from " << path << "\n"
             << diff.to_string()
             << "If the change is intended, regenerate with"
                " `golden_test --update-golden`.";
    }
  }

  static core::OfflineArtifacts* artifacts_;
};

core::OfflineArtifacts* GoldenTrajectories::artifacts_ = nullptr;

TEST_F(GoldenTrajectories, Plume16) { run_case(canonical_golden_cases()[0]); }
TEST_F(GoldenTrajectories, Plume24) { run_case(canonical_golden_cases()[1]); }
TEST_F(GoldenTrajectories, Plume32) { run_case(canonical_golden_cases()[2]); }

// One pinned trajectory per adversarial scene family: inflow bands, open
// boundaries, vortex dipoles and per-step obstacle re-rasterisation all
// feed the recorded DivNorm/CumDivNorm stream, so a regression in any of
// those code paths diffs against its family baseline here.
TEST_F(GoldenTrajectories, VortexRing16) {
  run_case(canonical_golden_cases()[3]);
}
TEST_F(GoldenTrajectories, ShearLayer16) {
  run_case(canonical_golden_cases()[4]);
}
TEST_F(GoldenTrajectories, JetObstacle16) {
  run_case(canonical_golden_cases()[5]);
}
TEST_F(GoldenTrajectories, MovingObstacle16) {
  run_case(canonical_golden_cases()[6]);
}

TEST_F(GoldenTrajectories, RecorderIsSelfConsistent) {
  // The recorder itself must be deterministic, or the baselines would be
  // unreproducible by construction: record the same case twice and demand
  // exact equality (no tolerance at all).
  const auto which = canonical_golden_cases()[0];
  const auto a =
      record_trajectory(which.name, which.problem, artifacts_->library[0]);
  const auto b =
      record_trajectory(which.name, which.problem, artifacts_->library[0]);
  EXPECT_EQ(a.div_norm, b.div_norm);
  EXPECT_EQ(a.cum_div_norm, b.cum_div_norm);
  EXPECT_EQ(a.final_qloss, b.final_qloss);
}

TEST(GoldenFormat, SaveLoadRoundTripsExactly) {
  GoldenTrajectory golden;
  golden.name = "roundtrip";
  golden.problem_seed = 42;
  golden.grid = 16;
  golden.steps = 3;
  golden.div_norm = {1.0e-3, 2.5000000000000004e-3, 0.125};
  golden.cum_div_norm = {1.0e-3, 3.5e-3, 0.1285};
  golden.final_qloss = 7.000000000000001e-2;
  const std::string path =
      ::testing::TempDir() + "/sfn_golden_roundtrip.json";
  save_golden(golden, path);
  const auto loaded = load_golden(path);
  EXPECT_EQ(loaded.name, golden.name);
  EXPECT_EQ(loaded.problem_seed, golden.problem_seed);
  EXPECT_EQ(loaded.steps, golden.steps);
  // %.17g round-trips doubles bit-exactly.
  EXPECT_EQ(loaded.div_norm, golden.div_norm);
  EXPECT_EQ(loaded.cum_div_norm, golden.cum_div_norm);
  EXPECT_EQ(loaded.final_qloss, golden.final_qloss);
}

TEST(GoldenFormat, CompareFlagsDriftWithReadableDiff) {
  GoldenTrajectory golden;
  golden.steps = 2;
  golden.div_norm = {1.0, 2.0};
  golden.cum_div_norm = {1.0, 3.0};
  golden.final_qloss = 0.01;
  GoldenTrajectory drifted = golden;
  drifted.cum_div_norm[1] = 3.0 * (1.0 + 1e-4);  // Above the 1e-5 bound.

  GoldenTolerances tol;
  util::Table diff = make_diff_table();
  EXPECT_FALSE(compare_golden(golden, drifted, tol, &diff));
  ASSERT_EQ(diff.rows(), 1u);
  EXPECT_EQ(diff.row_data()[0][0], "cum_div_norm");
  EXPECT_EQ(diff.row_data()[0][1], "1");

  util::Table clean = make_diff_table();
  EXPECT_TRUE(compare_golden(golden, golden, tol, &clean));
  EXPECT_EQ(clean.rows(), 0u);
}

}  // namespace
}  // namespace sfn::test

/// Custom main so the binary accepts --update-golden; this object file's
/// definition wins over the one in gtest_main.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      sfn::test::g_update_golden = true;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
