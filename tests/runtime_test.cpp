#include "runtime/controller.hpp"
#include "runtime/predictor.hpp"

#include <gtest/gtest.h>

namespace sfn {
namespace {

using runtime::CumDivNormExtrapolator;
using runtime::Decision;
using runtime::ModelSwitchController;
using runtime::PredictorParams;
using runtime::QualityDatabase;
using runtime::RuntimeCandidate;

TEST(Extrapolator, WarmupAndIntervalSkipping) {
  CumDivNormExtrapolator ex;
  // Steps 0-4 are warmup; 5,6 are the skipped head of interval one.
  for (int step = 0; step <= 6; ++step) {
    ex.observe(step, step * 1.0);
  }
  EXPECT_FALSE(ex.predict_final(100).has_value());  // Only 0 usable points
                                                    // until step 7.
  ex.observe(7, 7.0);
  ex.observe(8, 8.0);
  EXPECT_TRUE(ex.predict_final(100).has_value());
}

TEST(Extrapolator, PredictsLinearGrowthExactly) {
  CumDivNormExtrapolator ex;
  for (int step = 0; step < 10; ++step) {
    ex.observe(step, 3.0 * step + 2.0);
  }
  const auto pred = ex.predict_final(127);
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(*pred, 3.0 * 127 + 2.0, 1e-9);
}

TEST(Extrapolator, CheckPointsEveryInterval) {
  const CumDivNormExtrapolator ex;
  // warmup 5, interval 5: checks at steps 9, 14, 19, ...
  EXPECT_FALSE(ex.at_check_point(4));
  EXPECT_FALSE(ex.at_check_point(8));
  EXPECT_TRUE(ex.at_check_point(9));
  EXPECT_FALSE(ex.at_check_point(10));
  EXPECT_TRUE(ex.at_check_point(14));
}

TEST(Extrapolator, CustomInterval) {
  PredictorParams params;
  params.check_interval = 10;
  const CumDivNormExtrapolator ex(params);
  EXPECT_TRUE(ex.at_check_point(14));
  EXPECT_TRUE(ex.at_check_point(24));
  EXPECT_FALSE(ex.at_check_point(19));
}

TEST(Extrapolator, ResetClearsWindow) {
  CumDivNormExtrapolator ex;
  for (int step = 0; step < 10; ++step) {
    ex.observe(step, 2.0 * step);
  }
  ASSERT_TRUE(ex.predict_final(50).has_value());
  ex.reset_window();
  EXPECT_FALSE(ex.predict_final(50).has_value());
}

TEST(QualityDb, KnnPrediction) {
  QualityDatabase db;
  db.add(101, 0.09);
  db.add(112, 0.11);
  db.add(105, 0.10);
  db.add(109, 0.11);
  EXPECT_NEAR(db.predict_quality_loss(108, 4), 0.1025, 1e-12);
  EXPECT_EQ(db.size(), 4u);
}

QualityDatabase make_db(double lo_q = 0.005, double hi_q = 0.05) {
  // Linear map: CumDivNorm 0..100 -> Qloss lo..hi.
  QualityDatabase db;
  for (int i = 0; i <= 100; i += 5) {
    db.add(i, lo_q + (hi_q - lo_q) * i / 100.0);
  }
  return db;
}

std::vector<RuntimeCandidate> three_candidates() {
  // Ordered fastest/least-accurate -> slowest/most-accurate.
  return {
      {.model_id = 10, .probability = 0.7, .mean_seconds = 1.0,
       .mean_quality = 0.05},
      {.model_id = 11, .probability = 0.9, .mean_seconds = 2.0,
       .mean_quality = 0.02},
      {.model_id = 12, .probability = 0.8, .mean_seconds = 4.0,
       .mean_quality = 0.01},
  };
}

TEST(Controller, StartsWithHighestProbability) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db, 0.02, 128);
  EXPECT_EQ(controller.current_candidate(), 1u);
  EXPECT_EQ(controller.current().model_id, 11u);
}

TEST(Controller, SwitchesToAccurateWhenQualityPredictedBad) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db,
                                   /*q=*/0.01, /*total_steps=*/128);
  // Feed steep CumDivNorm growth => extrapolated final is large => Q'
  // well above q => must escalate accuracy.
  std::optional<Decision> decision;
  for (int step = 0; step < 10; ++step) {
    decision = controller.on_step(step, 5.0 * step);
  }
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, Decision::kSwitchAccurate);
  EXPECT_EQ(controller.current_candidate(), 2u);
}

TEST(Controller, SwitchesToFasterWhenQualityHasHeadroom) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db,
                                   /*q=*/0.05, /*total_steps=*/128);
  // Flat CumDivNorm => predicted final tiny => Q' far below q.
  std::optional<Decision> decision;
  for (int step = 0; step < 10; ++step) {
    decision = controller.on_step(step, 0.01 * step);
  }
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, Decision::kSwitchFaster);
  EXPECT_EQ(controller.current_candidate(), 0u);
}

TEST(Controller, KeepsWhenCloseToRequirement) {
  const auto db = make_db();
  runtime::ControllerParams params;
  params.keep_band = 0.5;
  ModelSwitchController controller(params, three_candidates(), &db,
                                   /*q=*/0.05, /*total_steps=*/128);
  // CumDivNorm trending to ~88 at step 127 => Q' ~ 0.045, inside the band
  // [0.025, 0.05].
  std::optional<Decision> decision;
  for (int step = 0; step < 10; ++step) {
    decision = controller.on_step(step, 0.7 * step);
  }
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, Decision::kKeep);
  EXPECT_EQ(controller.current_candidate(), 1u);
}

TEST(Controller, RestartsWhenMostAccurateStillFails) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db,
                                   /*q=*/0.001, /*total_steps=*/128);
  bool restarted = false;
  for (int step = 0; step < 40 && !restarted; ++step) {
    const auto d = controller.on_step(step, 10.0 * step);
    if (d == Decision::kRestartPcg) {
      restarted = true;
    }
  }
  EXPECT_TRUE(restarted);
  EXPECT_TRUE(controller.restart_requested());
  // After restart the controller goes inert.
  EXPECT_FALSE(controller.on_step(50, 500.0).has_value());
}

TEST(Controller, EventsRecordTransitions) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db, 0.01, 128);
  for (int step = 0; step < 20; ++step) {
    controller.on_step(step, 5.0 * step);
  }
  ASSERT_FALSE(controller.events().empty());
  const auto& first = controller.events().front();
  EXPECT_EQ(first.from_candidate, 1u);
  EXPECT_EQ(first.to_candidate, 2u);
  EXPECT_GT(first.predicted_quality, 0.01);
}

TEST(Controller, FastestModelKeepsWhenAlreadyFastest) {
  const auto db = make_db();
  auto candidates = three_candidates();
  candidates[0].probability = 1.0;  // Start on the fastest.
  ModelSwitchController controller({}, candidates, &db, /*q=*/0.05, 128);
  ASSERT_EQ(controller.current_candidate(), 0u);
  std::optional<Decision> decision;
  for (int step = 0; step < 10; ++step) {
    decision = controller.on_step(step, 0.001 * step);
  }
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, Decision::kKeep);  // Nothing faster exists.
}

TEST(Controller, RejectsEmptyInputs) {
  const auto db = make_db();
  EXPECT_THROW(ModelSwitchController({}, {}, &db, 0.01, 128),
               std::invalid_argument);
  const QualityDatabase empty_db;
  EXPECT_THROW(
      ModelSwitchController({}, three_candidates(), &empty_db, 0.01, 128),
      std::invalid_argument);
}

TEST(Controller, DecisionToString) {
  EXPECT_EQ(runtime::to_string(Decision::kKeep), "keep");
  EXPECT_EQ(runtime::to_string(Decision::kRestartPcg), "restart-pcg");
}

}  // namespace
}  // namespace sfn
