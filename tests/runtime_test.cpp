#include "runtime/controller.hpp"
#include "runtime/predictor.hpp"

#include <gtest/gtest.h>

namespace sfn {
namespace {

using runtime::CumDivNormExtrapolator;
using runtime::Decision;
using runtime::ModelSwitchController;
using runtime::PredictorParams;
using runtime::QualityDatabase;
using runtime::RuntimeCandidate;

TEST(Extrapolator, WarmupAndIntervalSkipping) {
  CumDivNormExtrapolator ex;
  // Steps 0-4 are warmup; 5,6 are the skipped head of interval one.
  for (int step = 0; step <= 6; ++step) {
    ex.observe(step, step * 1.0);
  }
  EXPECT_FALSE(ex.predict_final(100).has_value());  // Only 0 usable points
                                                    // until step 7.
  ex.observe(7, 7.0);
  ex.observe(8, 8.0);
  EXPECT_TRUE(ex.predict_final(100).has_value());
}

TEST(Extrapolator, PredictsLinearGrowthExactly) {
  CumDivNormExtrapolator ex;
  for (int step = 0; step < 10; ++step) {
    ex.observe(step, 3.0 * step + 2.0);
  }
  const auto pred = ex.predict_final(127);
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(*pred, 3.0 * 127 + 2.0, 1e-9);
}

TEST(Extrapolator, CheckPointsEveryInterval) {
  const CumDivNormExtrapolator ex;
  // warmup 5, interval 5: checks at steps 9, 14, 19, ...
  EXPECT_FALSE(ex.at_check_point(4));
  EXPECT_FALSE(ex.at_check_point(8));
  EXPECT_TRUE(ex.at_check_point(9));
  EXPECT_FALSE(ex.at_check_point(10));
  EXPECT_TRUE(ex.at_check_point(14));
}

TEST(Extrapolator, CustomInterval) {
  PredictorParams params;
  params.check_interval = 10;
  const CumDivNormExtrapolator ex(params);
  EXPECT_TRUE(ex.at_check_point(14));
  EXPECT_TRUE(ex.at_check_point(24));
  EXPECT_FALSE(ex.at_check_point(19));
}

TEST(Extrapolator, ResetClearsWindow) {
  CumDivNormExtrapolator ex;
  for (int step = 0; step < 10; ++step) {
    ex.observe(step, 2.0 * step);
  }
  ASSERT_TRUE(ex.predict_final(50).has_value());
  ex.reset_window();
  EXPECT_FALSE(ex.predict_final(50).has_value());
}

TEST(QualityDb, KnnPrediction) {
  QualityDatabase db;
  db.add(101, 0.09);
  db.add(112, 0.11);
  db.add(105, 0.10);
  db.add(109, 0.11);
  EXPECT_NEAR(db.predict_quality_loss(108, 4), 0.1025, 1e-12);
  EXPECT_EQ(db.size(), 4u);
}

QualityDatabase make_db(double lo_q = 0.005, double hi_q = 0.05) {
  // Linear map: CumDivNorm 0..100 -> Qloss lo..hi.
  QualityDatabase db;
  for (int i = 0; i <= 100; i += 5) {
    db.add(i, lo_q + (hi_q - lo_q) * i / 100.0);
  }
  return db;
}

std::vector<RuntimeCandidate> three_candidates() {
  // Ordered fastest/least-accurate -> slowest/most-accurate.
  return {
      {.model_id = 10, .probability = 0.7, .mean_seconds = 1.0,
       .mean_quality = 0.05},
      {.model_id = 11, .probability = 0.9, .mean_seconds = 2.0,
       .mean_quality = 0.02},
      {.model_id = 12, .probability = 0.8, .mean_seconds = 4.0,
       .mean_quality = 0.01},
  };
}

TEST(Controller, StartsWithHighestProbability) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db, 0.02, 128);
  EXPECT_EQ(controller.current_candidate(), 1u);
  EXPECT_EQ(controller.current().model_id, 11u);
}

TEST(Controller, SwitchesToAccurateWhenQualityPredictedBad) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db,
                                   /*q=*/0.01, /*total_steps=*/128);
  // Feed steep CumDivNorm growth => extrapolated final is large => Q'
  // well above q => must escalate accuracy.
  std::optional<Decision> decision;
  for (int step = 0; step < 10; ++step) {
    decision = controller.on_step(step, 5.0 * step);
  }
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, Decision::kSwitchAccurate);
  EXPECT_EQ(controller.current_candidate(), 2u);
}

TEST(Controller, SwitchesToFasterWhenQualityHasHeadroom) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db,
                                   /*q=*/0.05, /*total_steps=*/128);
  // Flat CumDivNorm => predicted final tiny => Q' far below q.
  std::optional<Decision> decision;
  for (int step = 0; step < 10; ++step) {
    decision = controller.on_step(step, 0.01 * step);
  }
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, Decision::kSwitchFaster);
  EXPECT_EQ(controller.current_candidate(), 0u);
}

TEST(Controller, KeepsWhenCloseToRequirement) {
  const auto db = make_db();
  runtime::ControllerParams params;
  params.keep_band = 0.5;
  ModelSwitchController controller(params, three_candidates(), &db,
                                   /*q=*/0.05, /*total_steps=*/128);
  // CumDivNorm trending to ~88 at step 127 => Q' ~ 0.045, inside the band
  // [0.025, 0.05].
  std::optional<Decision> decision;
  for (int step = 0; step < 10; ++step) {
    decision = controller.on_step(step, 0.7 * step);
  }
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, Decision::kKeep);
  EXPECT_EQ(controller.current_candidate(), 1u);
}

TEST(Controller, RestartsWhenMostAccurateStillFails) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db,
                                   /*q=*/0.001, /*total_steps=*/128);
  bool restarted = false;
  for (int step = 0; step < 40 && !restarted; ++step) {
    const auto d = controller.on_step(step, 10.0 * step);
    if (d == Decision::kRestartPcg) {
      restarted = true;
    }
  }
  EXPECT_TRUE(restarted);
  EXPECT_TRUE(controller.restart_requested());
  // After restart the controller goes inert.
  EXPECT_FALSE(controller.on_step(50, 500.0).has_value());
}

TEST(Controller, EventsRecordTransitions) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db, 0.01, 128);
  for (int step = 0; step < 20; ++step) {
    controller.on_step(step, 5.0 * step);
  }
  ASSERT_FALSE(controller.events().empty());
  const auto& first = controller.events().front();
  EXPECT_EQ(first.from_candidate, 1u);
  EXPECT_EQ(first.to_candidate, 2u);
  EXPECT_GT(first.predicted_quality, 0.01);
}

TEST(Controller, FastestModelKeepsWhenAlreadyFastest) {
  const auto db = make_db();
  auto candidates = three_candidates();
  candidates[0].probability = 1.0;  // Start on the fastest.
  ModelSwitchController controller({}, candidates, &db, /*q=*/0.05, 128);
  ASSERT_EQ(controller.current_candidate(), 0u);
  std::optional<Decision> decision;
  for (int step = 0; step < 10; ++step) {
    decision = controller.on_step(step, 0.001 * step);
  }
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, Decision::kKeep);  // Nothing faster exists.
}

TEST(Controller, RejectsEmptyInputs) {
  const auto db = make_db();
  EXPECT_THROW(ModelSwitchController({}, {}, &db, 0.01, 128),
               std::invalid_argument);
  const QualityDatabase empty_db;
  EXPECT_THROW(
      ModelSwitchController({}, three_candidates(), &empty_db, 0.01, 128),
      std::invalid_argument);
}

TEST(Controller, DecisionToString) {
  EXPECT_EQ(runtime::to_string(Decision::kKeep), "keep");
  EXPECT_EQ(runtime::to_string(Decision::kRestartPcg), "restart-pcg");
  EXPECT_EQ(runtime::to_string(Decision::kQuarantine), "quarantine");
}

// --- Decision boundaries (preview_decision is the stateless seam) --------

TEST(ControllerBoundary, KeepBandEdgesWithDeadBand) {
  const auto db = make_db();
  runtime::ControllerParams params;  // keep_band 0.35, dead_band 0.1.
  ModelSwitchController controller(params, three_candidates(), &db,
                                   /*q=*/0.05, /*total_steps=*/128);
  ASSERT_EQ(controller.current_candidate(), 1u);
  // Upshift only strictly above q * (1 + dead_band) = 0.055.
  EXPECT_EQ(controller.preview_decision(0.055), Decision::kKeep);
  EXPECT_EQ(controller.preview_decision(0.0551), Decision::kSwitchAccurate);
  // Downshift only strictly below q * (1 - keep_band - dead_band) = 0.0275.
  EXPECT_EQ(controller.preview_decision(0.0276), Decision::kKeep);
  EXPECT_EQ(controller.preview_decision(0.0274), Decision::kSwitchFaster);
  // Everything between the widened edges keeps.
  EXPECT_EQ(controller.preview_decision(0.04), Decision::kKeep);
}

TEST(ControllerBoundary, DownshiftBlockedAtFastest) {
  const auto db = make_db();
  auto candidates = three_candidates();
  candidates[0].probability = 1.0;  // Start at the bottom of the ladder.
  ModelSwitchController controller({}, candidates, &db, /*q=*/0.05, 128);
  ASSERT_EQ(controller.current_candidate(), 0u);
  EXPECT_EQ(controller.preview_decision(1e-6), Decision::kKeep);
}

TEST(ControllerBoundary, DownshiftBlockedIntoModelAboveRequirement) {
  // The faster neighbour's offline mean quality (0.05) exceeds q = 0.03:
  // headroom in the prediction must not downshift into a model that
  // violates q on the average problem.
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db,
                                   /*q=*/0.03, 128);
  ASSERT_EQ(controller.current_candidate(), 1u);
  EXPECT_EQ(controller.preview_decision(1e-6), Decision::kKeep);
}

TEST(ControllerBoundary, RestartMarginOnMostAccurate) {
  const auto db = make_db();
  auto candidates = three_candidates();
  candidates[2].probability = 1.0;  // Start at the top of the ladder.
  ModelSwitchController controller({}, candidates, &db, /*q=*/0.01, 128);
  ASSERT_EQ(controller.current_candidate(), 2u);
  // Above the upshift edge (0.011) but inside restart_margin (1.5): ride
  // out the most accurate model rather than throw the run away.
  EXPECT_EQ(controller.preview_decision(0.012), Decision::kKeep);
  EXPECT_EQ(controller.preview_decision(0.015), Decision::kKeep);
  // Clear violation: the exact solver is all that is left.
  EXPECT_EQ(controller.preview_decision(0.0151), Decision::kRestartPcg);
}

// --- Quarantine ----------------------------------------------------------

TEST(ControllerQuarantine, TripsInsideWindowQuarantineAndReplan) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db, 0.02, 128);
  ASSERT_EQ(controller.current_candidate(), 1u);
  EXPECT_EQ(controller.on_guard_trip(5, 1.0),
            runtime::GuardVerdict::kTripRecorded);
  EXPECT_EQ(controller.on_guard_trip(6, 2.0),
            runtime::GuardVerdict::kTripRecorded);
  EXPECT_EQ(controller.on_guard_trip(7, 3.0),
            runtime::GuardVerdict::kQuarantined);
  EXPECT_TRUE(controller.is_quarantined(1));
  EXPECT_EQ(controller.quarantined_count(), 1u);
  // Re-plan prefers escalating accuracy.
  EXPECT_EQ(controller.current_candidate(), 2u);
  ASSERT_FALSE(controller.events().empty());
  const auto& ev = controller.events().back();
  EXPECT_EQ(ev.decision, Decision::kQuarantine);
  EXPECT_EQ(ev.from_candidate, 1u);
  EXPECT_EQ(ev.to_candidate, 2u);
  EXPECT_EQ(ev.step, 7);
}

TEST(ControllerQuarantine, SpreadTripsNeverQuarantine) {
  const auto db = make_db();
  runtime::ControllerParams params;  // trips 3 / window 20.
  ModelSwitchController controller(params, three_candidates(), &db, 0.02,
                                   512);
  // Each trip is 25 steps from the last: the sliding window never holds
  // more than one, so a occasionally-unlucky candidate survives.
  for (int step = 0; step < 200; step += 25) {
    EXPECT_EQ(controller.on_guard_trip(step, 1.0),
              runtime::GuardVerdict::kTripRecorded);
  }
  EXPECT_EQ(controller.quarantined_count(), 0u);
}

TEST(ControllerQuarantine, ExhaustionIsLastResortNotRestart) {
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db, 0.02, 128);
  ASSERT_EQ(controller.current_candidate(), 1u);
  // Quarantine 1 -> re-plan to 2; quarantine 2 -> only 0 left (faster);
  // quarantine 0 -> exhausted.
  for (int t = 0; t < 3; ++t) controller.on_guard_trip(10 + t, 1.0);
  EXPECT_EQ(controller.current_candidate(), 2u);
  for (int t = 0; t < 2; ++t) controller.on_guard_trip(13 + t, 1.0);
  EXPECT_EQ(controller.on_guard_trip(15, 1.0),
            runtime::GuardVerdict::kQuarantined);
  EXPECT_EQ(controller.current_candidate(), 0u);
  for (int t = 0; t < 2; ++t) controller.on_guard_trip(16 + t, 1.0);
  EXPECT_EQ(controller.on_guard_trip(18, 1.0),
            runtime::GuardVerdict::kExhausted);

  EXPECT_TRUE(controller.exhausted());
  EXPECT_EQ(controller.quarantined_count(), 3u);
  // Exhaustion degrades the *remaining* steps; it never replays the run.
  EXPECT_FALSE(controller.restart_requested());
  ASSERT_FALSE(controller.events().empty());
  EXPECT_EQ(controller.events().back().decision, Decision::kRestartPcg);
  // The controller is inert afterwards (both report channels).
  EXPECT_FALSE(controller.on_step(30, 100.0).has_value());
  EXPECT_EQ(controller.on_guard_trip(31, 1.0),
            runtime::GuardVerdict::kExhausted);
}

TEST(ControllerQuarantine, QuarantinedRungIsSkippedBySwitches) {
  const auto db = make_db();
  auto candidates = three_candidates();
  candidates[2].probability = 1.0;  // Start on the most accurate.
  ModelSwitchController controller({}, candidates, &db, /*q=*/0.05, 128);
  ASSERT_EQ(controller.current_candidate(), 2u);
  // Quarantine the top rung: nothing above it, so re-plan steps down.
  for (int t = 0; t < 3; ++t) controller.on_guard_trip(t, 1.0);
  ASSERT_TRUE(controller.is_quarantined(2));
  EXPECT_EQ(controller.current_candidate(), 1u);
  for (int t = 0; t < 3; ++t) controller.on_guard_trip(5 + t, 1.0);
  ASSERT_TRUE(controller.is_quarantined(1));
  EXPECT_EQ(controller.current_candidate(), 0u);
  // Predicted violation from the fastest: both upper rungs quarantined,
  // nothing to escalate into — only a clear violation restarts.
  EXPECT_EQ(controller.preview_decision(0.06), Decision::kKeep);
  EXPECT_EQ(controller.preview_decision(0.08), Decision::kRestartPcg);
}

// --- Hysteresis ----------------------------------------------------------

/// Noisy synthetic stream: CumDivNorm alternates between steep growth and
/// stalls every check interval, exactly the shape that makes a greedy
/// controller thrash up and down the ladder.
double noisy_increment(int step) {
  return ((step / 5) % 2 == 0) ? 0.7 : 0.0;
}

int count_switches(const std::vector<runtime::SwitchEvent>& events) {
  int n = 0;
  for (const auto& ev : events) {
    if (ev.decision == Decision::kSwitchFaster ||
        ev.decision == Decision::kSwitchAccurate) {
      ++n;
    }
  }
  return n;
}

TEST(ControllerHysteresis, NoOscillationOnNoisyStream) {
  const auto db = make_db();
  runtime::ControllerParams hysteresis;  // Defaults: cooldown 1, dead-band.
  runtime::ControllerParams greedy;
  greedy.switch_cooldown_checks = 0;
  greedy.switch_dead_band = 0.0;

  ModelSwitchController calm(hysteresis, three_candidates(), &db,
                             /*q=*/0.03, /*total_steps=*/128);
  ModelSwitchController thrash(greedy, three_candidates(), &db,
                               /*q=*/0.03, /*total_steps=*/128);
  double value = 0.0;
  for (int step = 0; step < 80; ++step) {
    value += noisy_increment(step);
    calm.on_step(step, value);
    thrash.on_step(step, value);
  }
  // The stream genuinely provokes oscillation in a greedy controller...
  EXPECT_GE(count_switches(thrash.events()), 3);
  // ...and hysteresis damps it without disabling switching outright.
  EXPECT_LT(count_switches(calm.events()), count_switches(thrash.events()));
  EXPECT_FALSE(calm.restart_requested());

  // Core guarantee: a direction reversal needs a cooldown expiry, so two
  // opposite-direction switches are at least two check intervals apart —
  // at most one switch per interval and no flapping inside one.
  const int interval = hysteresis.predictor.check_interval;
  int last_step = -1000;
  int last_direction = 0;
  for (const auto& ev : calm.events()) {
    int direction = 0;
    if (ev.decision == Decision::kSwitchFaster) direction = -1;
    if (ev.decision == Decision::kSwitchAccurate) direction = +1;
    if (direction == 0) continue;
    if (last_direction != 0 && direction != last_direction) {
      EXPECT_GE(ev.step - last_step, 2 * interval)
          << "reversal at step " << ev.step << " after " << last_step;
    }
    last_step = ev.step;
    last_direction = direction;
  }
}

TEST(ControllerHysteresis, DeadBandAbsorbsEdgeJitter) {
  const auto db = make_db();
  runtime::ControllerParams with_band;
  with_band.keep_band = 0.5;
  with_band.switch_dead_band = 0.1;
  runtime::ControllerParams without_band = with_band;
  without_band.switch_dead_band = 0.0;

  const ModelSwitchController damped(with_band, three_candidates(), &db,
                                     /*q=*/0.05, 128);
  const ModelSwitchController greedy(without_band, three_candidates(), &db,
                                     /*q=*/0.05, 128);
  // A prediction jittering just below the raw band edge (0.025): the
  // dead-band widens the keep zone to 0.02, so it no longer reacts.
  EXPECT_EQ(damped.preview_decision(0.024), Decision::kKeep);
  EXPECT_EQ(greedy.preview_decision(0.024), Decision::kSwitchFaster);
  // A clear departure still acts.
  EXPECT_EQ(damped.preview_decision(0.019), Decision::kSwitchFaster);
}

TEST(ControllerHysteresis, SameDirectionEscalationIsNeverDelayed) {
  // The cooldown must hold only reversals: an escalation chain up to the
  // restart (Algorithm 2's correctness path) proceeds check by check.
  const auto db = make_db();
  ModelSwitchController controller({}, three_candidates(), &db,
                                   /*q=*/0.001, /*total_steps=*/128);
  bool restarted = false;
  for (int step = 0; step < 40 && !restarted; ++step) {
    restarted = controller.on_step(step, 10.0 * step) ==
                Decision::kRestartPcg;
  }
  EXPECT_TRUE(restarted);  // Hysteresis never blocks the escalation chain.
}

}  // namespace
}  // namespace sfn
