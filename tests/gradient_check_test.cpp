#include "core/training.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace sfn {
namespace {

using nn::Shape;
using nn::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed,
                     double lo = -1.0, double hi = 1.0) {
  util::Rng rng(seed);
  Tensor t(shape);
  for (std::size_t k = 0; k < t.numel(); ++k) {
    t[k] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

/// Scalar head for gradient checks: L = sum(c_k * y_k) with fixed random
/// coefficients, whose gradient w.r.t. y is exactly c.
struct ScalarHead {
  Tensor coeffs;
  explicit ScalarHead(Shape shape) : coeffs(random_tensor(shape, 999)) {}
  [[nodiscard]] double loss(const Tensor& y) const {
    double acc = 0.0;
    for (std::size_t k = 0; k < y.numel(); ++k) {
      acc += static_cast<double>(coeffs[k]) * y[k];
    }
    return acc;
  }
  [[nodiscard]] Tensor grad() const { return coeffs; }
};

/// Verify a layer's input gradient against central finite differences.
void check_input_gradient(nn::Layer& layer, Tensor input,
                          double tolerance = 2e-2) {
  const Tensor y0 = layer.forward(input, false);
  const ScalarHead head(y0.shape());
  const Tensor grad_in = layer.backward(head.grad());

  constexpr float kEps = 1e-2f;
  util::Rng rng(17);
  // Probe a sample of coordinates (all of them for small tensors).
  const std::size_t probes = std::min<std::size_t>(input.numel(), 24);
  for (std::size_t p = 0; p < probes; ++p) {
    const auto k = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(input.numel()) - 1));
    Tensor plus = input;
    plus[k] += kEps;
    Tensor minus = input;
    minus[k] -= kEps;
    const double num = (head.loss(layer.forward(plus, false)) -
                        head.loss(layer.forward(minus, false))) /
                       (2.0 * kEps);
    EXPECT_NEAR(grad_in[k], num, tolerance * std::max(1.0, std::abs(num)))
        << "coordinate " << k;
  }
}

/// Verify a layer's parameter gradients against finite differences.
void check_param_gradients(nn::Layer& layer, const Tensor& input,
                           double tolerance = 2e-2) {
  const Tensor y0 = layer.forward(input, false);
  const ScalarHead head(y0.shape());
  for (auto& view : layer.params()) {
    std::fill(view.grads.begin(), view.grads.end(), 0.0f);
  }
  layer.backward(head.grad());

  constexpr float kEps = 1e-2f;
  util::Rng rng(23);
  auto params = layer.params();
  for (std::size_t v = 0; v < params.size(); ++v) {
    const std::size_t probes = std::min<std::size_t>(params[v].values.size(), 12);
    for (std::size_t p = 0; p < probes; ++p) {
      const auto k = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(params[v].values.size()) - 1));
      const float saved = params[v].values[k];
      params[v].values[k] = saved + kEps;
      const double lp = head.loss(layer.forward(input, false));
      params[v].values[k] = saved - kEps;
      const double lm = head.loss(layer.forward(input, false));
      params[v].values[k] = saved;
      const double num = (lp - lm) / (2.0 * kEps);
      EXPECT_NEAR(params[v].grads[k], num,
                  tolerance * std::max(1.0, std::abs(num)))
          << "param blob " << v << " coord " << k;
    }
  }
}

TEST(GradCheck, Conv2DInputAndParams) {
  nn::Conv2D conv(2, 3, 3);
  const Tensor x = random_tensor(Shape{2, 5, 5}, 1);
  check_input_gradient(conv, x);
  check_param_gradients(conv, x);
}

TEST(GradCheck, Conv2DKernel5) {
  nn::Conv2D conv(1, 2, 5);
  const Tensor x = random_tensor(Shape{1, 7, 7}, 2);
  check_input_gradient(conv, x);
  check_param_gradients(conv, x);
}

TEST(GradCheck, ResidualConv) {
  nn::Conv2D conv(2, 2, 3, /*residual=*/true);
  const Tensor x = random_tensor(Shape{2, 4, 4}, 3);
  check_input_gradient(conv, x);
  check_param_gradients(conv, x);
}

TEST(GradCheck, ReLU) {
  nn::ReLU relu;
  // Keep inputs away from the kink at 0 so finite differences are valid.
  Tensor x = random_tensor(Shape{1, 4, 4}, 4);
  for (std::size_t k = 0; k < x.numel(); ++k) {
    if (std::abs(x[k]) < 0.1f) {
      x[k] = 0.5f;
    }
  }
  check_input_gradient(relu, x);
}

TEST(GradCheck, Sigmoid) {
  nn::Sigmoid sig;
  const Tensor x = random_tensor(Shape{1, 3, 3}, 5);
  check_input_gradient(sig, x);
}

TEST(GradCheck, Tanh) {
  nn::Tanh tanh_layer;
  const Tensor x = random_tensor(Shape{1, 3, 3}, 6);
  check_input_gradient(tanh_layer, x);
}

TEST(GradCheck, MaxPool) {
  nn::MaxPool2D pool(2);
  // Distinct values so argmax is stable under the probe perturbation.
  Tensor x(Shape{2, 4, 4});
  for (std::size_t k = 0; k < x.numel(); ++k) {
    x[k] = static_cast<float>(k) * 0.37f;
  }
  check_input_gradient(pool, x);
}

TEST(GradCheck, AvgPool) {
  nn::AvgPool2D pool(2);
  const Tensor x = random_tensor(Shape{2, 4, 4}, 7);
  check_input_gradient(pool, x);
}

TEST(GradCheck, Upsample) {
  nn::Upsample2D up(2);
  const Tensor x = random_tensor(Shape{1, 3, 3}, 8);
  check_input_gradient(up, x);
}

TEST(GradCheck, Dense) {
  nn::Dense dense(8, 5);
  const Tensor x = random_tensor(Shape{1, 1, 8}, 9);
  check_input_gradient(dense, x);
  check_param_gradients(dense, x);
}

TEST(GradCheck, WholeNetworkChain) {
  // conv -> relu -> pool -> conv -> upsample: checks the composition of
  // backward passes, not just each layer in isolation.
  nn::Network net;
  net.emplace<nn::Conv2D>(1, 4, 3);
  net.emplace<nn::ReLU>();
  net.emplace<nn::AvgPool2D>(2);
  net.emplace<nn::Conv2D>(4, 1, 3);
  net.emplace<nn::Upsample2D>(2);
  util::Rng rng(10);
  net.init_weights(rng);

  Tensor x = random_tensor(Shape{1, 6, 6}, 11);
  const Tensor y0 = net.forward(x, false);
  const ScalarHead head(y0.shape());
  net.zero_grads();
  net.forward(x, false);
  const Tensor grad_in = net.backward(head.grad());

  // Small epsilon keeps the probe on one side of ReLU kinks.
  constexpr float kEps = 2e-3f;
  for (std::size_t k = 0; k < x.numel(); k += 5) {
    Tensor plus = x;
    plus[k] += kEps;
    Tensor minus = x;
    minus[k] -= kEps;
    const double num = (head.loss(net.forward(plus, false)) -
                        head.loss(net.forward(minus, false))) /
                       (2.0 * kEps);
    EXPECT_NEAR(grad_in[k], num, 4e-2 * std::max(1.0, std::abs(num)));
  }
}

TEST(GradCheck, MseLossGradient) {
  const Tensor pred = random_tensor(Shape{1, 3, 3}, 12);
  const Tensor target = random_tensor(Shape{1, 3, 3}, 13);
  const auto loss = nn::mse_loss(pred, target);

  constexpr float kEps = 1e-3f;
  for (std::size_t k = 0; k < pred.numel(); ++k) {
    Tensor plus = pred;
    plus[k] += kEps;
    Tensor minus = pred;
    minus[k] -= kEps;
    const double num = (nn::mse_loss(plus, target).value -
                        nn::mse_loss(minus, target).value) /
                       (2.0 * kEps);
    EXPECT_NEAR(loss.grad[k], num, 1e-3);
  }
}

TEST(GradCheck, BceLossGradient) {
  Tensor pred = random_tensor(Shape{1, 1, 5}, 14, 0.2, 0.8);
  const Tensor target = random_tensor(Shape{1, 1, 5}, 15, 0.0, 1.0);
  const auto loss = nn::bce_loss(pred, target);

  constexpr float kEps = 1e-3f;
  for (std::size_t k = 0; k < pred.numel(); ++k) {
    Tensor plus = pred;
    plus[k] += kEps;
    Tensor minus = pred;
    minus[k] -= kEps;
    const double num = (nn::bce_loss(plus, target).value -
                        nn::bce_loss(minus, target).value) /
                       (2.0 * kEps);
    EXPECT_NEAR(loss.grad[k], num, 5e-3 * std::max(1.0, std::abs(num)));
  }
}

TEST(GradCheck, DivNormLossGradient) {
  // The paper's unsupervised objective: gradient 2 A (w .* r) must match
  // finite differences of sum w r^2 / N.
  fluid::FlagGrid flags(8, 8, fluid::CellType::kFluid);
  flags.set_smoke_box_boundary();
  flags.set(4, 4, fluid::CellType::kSolid);

  util::Rng rng(16);
  fluid::GridF rhs(8, 8, 0.0f);
  for (int j = 0; j < 8; ++j) {
    for (int i = 0; i < 8; ++i) {
      if (flags.is_fluid(i, j)) {
        rhs(i, j) = static_cast<float>(rng.uniform(-0.2, 0.2));
      }
    }
  }
  Tensor pred = random_tensor(Shape{1, 8, 8}, 17, -0.3, 0.3);

  const auto loss = core::divnorm_loss(flags, rhs, pred, 3);
  EXPECT_GT(loss.value, 0.0);

  constexpr float kEps = 1e-3f;
  for (int j = 0; j < 8; ++j) {
    for (int i = 0; i < 8; ++i) {
      Tensor plus = pred;
      plus.at(0, j, i) += kEps;
      Tensor minus = pred;
      minus.at(0, j, i) -= kEps;
      const double num = (core::divnorm_loss(flags, rhs, plus, 3).value -
                          core::divnorm_loss(flags, rhs, minus, 3).value) /
                         (2.0 * kEps);
      EXPECT_NEAR(loss.grad.at(0, j, i), num,
                  2e-3 * std::max(1.0, std::abs(num)))
          << i << "," << j;
    }
  }
}

TEST(GradCheck, DivNormLossZeroAtExactSolution) {
  // If p solves A p = rhs exactly, DivNorm and its gradient vanish.
  fluid::FlagGrid flags(8, 8, fluid::CellType::kFluid);
  flags.set_smoke_box_boundary();
  const fluid::GridF rhs(8, 8, 0.0f);
  const Tensor pred(Shape{1, 8, 8}, 0.0f);
  const auto loss = core::divnorm_loss(flags, rhs, pred, 3);
  EXPECT_DOUBLE_EQ(loss.value, 0.0);
  for (std::size_t k = 0; k < loss.grad.numel(); ++k) {
    EXPECT_FLOAT_EQ(loss.grad[k], 0.0f);
  }
}

}  // namespace
}  // namespace sfn
