#pragma once

// Shared fixtures for the serving test layer (determinism, stress,
// golden): small seeded synthetic artifacts that make multi-session runs
// cheap and bit-reproducible. The networks carry freshly initialised
// (untrained) weights — their near-trivial pressure answers keep the
// relative residual around 1, safely below the guard's accept threshold,
// so synthetic sessions never trip the health guard organically; tests
// that want trips inject them through SessionConfig::solver_decorator.

#include "core/offline.hpp"
#include "core/session.hpp"
#include "modelgen/arch_spec.hpp"
#include "util/rng.hpp"
#include "workload/problems.hpp"
#include "workload/scenes.hpp"

#include <cstdint>
#include <string>
#include <utility>

namespace sfn::test {

/// One small (2-conv-stage) surrogate with seeded random weights.
/// `mean_quality` / `mean_seconds` position it on the candidate ladder.
inline core::TrainedModel make_test_model(std::uint64_t seed,
                                          std::string name,
                                          std::size_t model_id,
                                          double mean_quality,
                                          double mean_seconds) {
  modelgen::ArchSpec spec;
  spec.stages.resize(2);
  spec.stages[0].kernel = 3;
  spec.stages[0].channels = 6;
  spec.stages[1].kernel = 3;
  spec.stages[1].channels = 4;
  spec.name = std::move(name);
  util::Rng rng(seed);

  core::TrainedModel model;
  model.spec = spec;
  model.net = modelgen::build_network(spec, rng);
  model.origin = "serve-test";
  model.mean_quality = mean_quality;
  model.mean_seconds = mean_seconds;
  model.records.model_id = model_id;
  return model;
}

/// Synthetic OfflineArtifacts: two candidates, a benign KNN database
/// (every prediction lands far below the loose requirement, so the
/// controller's decisions depend only on the deterministic telemetry) and
/// no MLP predictor (run_adaptive reads probabilities from `scores`).
inline core::OfflineArtifacts make_test_artifacts(std::uint64_t seed = 41) {
  core::OfflineArtifacts artifacts;
  artifacts.library.models.push_back(
      make_test_model(seed, "serve-fast", 0, /*quality=*/0.020,
                      /*seconds=*/0.010));
  artifacts.library.models.push_back(
      make_test_model(seed + 1, "serve-accurate", 1, /*quality=*/0.010,
                      /*seconds=*/0.020));
  artifacts.pareto_ids = {0, 1};
  artifacts.selected_ids = {0, 1};

  quality::CandidateScore fast;
  fast.model_id = 0;
  fast.success_probability = 0.9;
  fast.model_seconds = 0.010;
  fast.selected = true;
  quality::CandidateScore accurate = fast;
  accurate.model_id = 1;
  accurate.success_probability = 0.6;
  accurate.model_seconds = 0.020;
  artifacts.scores = {fast, accurate};

  for (int i = 0; i < 16; ++i) {
    artifacts.quality_db.add(/*cum_div_norm_final=*/0.5 * i,
                             /*quality_loss=*/0.010 + 1e-4 * i);
  }
  artifacts.pcg_mean_seconds = 1.0;
  artifacts.requirement = {/*quality_loss=*/0.5, /*seconds=*/60.0};
  return artifacts;
}

/// Deterministic small problem (16x16 keeps multi-session suites fast).
inline workload::InputProblem make_test_problem(std::uint64_t seed,
                                                int grid = 16,
                                                int steps = 12) {
  workload::ProblemSetParams params;
  params.grid = grid;
  params.steps = steps;
  return workload::generate_problems(1, params, seed)[0];
}

/// The canonical problems whose trajectories are pinned under
/// tests/golden/. Shared between golden_test (record/check) and
/// persistence_test (loaded artifacts must reproduce the same baseline),
/// always simulated with make_test_artifacts().library[0]. Each scene
/// family contributes one case; lint rule R11 checks that every family
/// name registered in src/workload/scenes.cpp appears here (matched via
/// the fixture filename, which embeds the case name).
struct GoldenCase {
  std::string name;
  workload::InputProblem problem;
};

inline std::vector<GoldenCase> canonical_golden_cases() {
  using workload::SceneFamily;
  return {
      {"plume16", make_test_problem(101, /*grid=*/16, /*steps=*/24)},
      {"plume24", make_test_problem(202, /*grid=*/24, /*steps=*/24)},
      {"plume32", make_test_problem(303, /*grid=*/32, /*steps=*/16)},
      {"vortex_ring16",
       workload::make_scene(SceneFamily::kVortexRing, 404, {16, 20})},
      {"shear_layer16",
       workload::make_scene(SceneFamily::kShearLayer, 505, {16, 20})},
      {"jet_obstacle16",
       workload::make_scene(SceneFamily::kJetObstacle, 606, {16, 20})},
      {"moving_obstacle16",
       workload::make_scene(SceneFamily::kMovingObstacle, 707, {16, 20})},
  };
}

}  // namespace sfn::test
