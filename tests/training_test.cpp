#include "core/neural_projection.hpp"
#include "core/offline.hpp"
#include "core/training.hpp"
#include "fluid/operators.hpp"
#include "fluid/pcg.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sfn {
namespace {

workload::ProblemSetParams small_params() {
  workload::ProblemSetParams p;
  p.grid = 24;
  p.steps = 10;
  return p;
}

TEST(Training, CollectsSamplesAtStride) {
  const auto problems = workload::generate_problems(2, small_params(), 1);
  const auto samples = core::collect_training_data(problems, 5);
  // 10 steps, stride 5 -> snapshots at steps 0 and 5, per problem.
  EXPECT_EQ(samples.size(), 4u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.rhs.nx(), 24);
    EXPECT_EQ(s.pressure.nx(), 24);
    // PCG solved this sample: residual of the stored pair is tiny.
    EXPECT_LT(fluid::poisson_residual(s.flags, s.rhs, s.pressure), 1e-5);
  }
}

TEST(Training, EncoderScaleInvariance) {
  // The solver input encoding divides by max |rhs|: scaling the rhs must
  // produce the identical normalised tensor.
  const auto problems = workload::generate_problems(1, small_params(), 2);
  const auto samples = core::collect_training_data(problems, 4);
  ASSERT_FALSE(samples.empty());
  const auto& s = samples.front();

  double inv1 = 0.0;
  const auto t1 = core::encode_solver_input(s.flags, s.rhs, &inv1);
  fluid::GridF scaled = s.rhs;
  for (std::size_t k = 0; k < scaled.size(); ++k) {
    scaled[k] *= 8.0f;
  }
  double inv2 = 0.0;
  const auto t2 = core::encode_solver_input(s.flags, scaled, &inv2);
  EXPECT_NEAR(inv1 / inv2, 8.0, 1e-4);
  for (std::size_t k = 0; k < t1.numel(); ++k) {
    ASSERT_NEAR(t1[k], t2[k], 1e-5f);
  }
}

TEST(Training, LossDecreasesOverEpochs) {
  const auto problems = workload::generate_problems(2, small_params(), 3);
  const auto samples = core::collect_training_data(problems, 3);
  ASSERT_GT(samples.size(), 4u);

  util::Rng rng(7);
  auto net = modelgen::build_network(modelgen::tompson_spec(4), rng);

  core::SurrogateTrainParams one_epoch;
  one_epoch.epochs = 1;
  auto net_copy = net;
  const double loss1 = core::train_surrogate(&net_copy, samples, one_epoch, rng);

  util::Rng rng2(7);
  core::SurrogateTrainParams many_epochs;
  many_epochs.epochs = 8;
  const double loss8 = core::train_surrogate(&net, samples, many_epochs, rng2);
  EXPECT_LT(loss8, loss1);
}

/// Residual-divergence ratio of a surrogate's single solve on held-out
/// samples: ||A p-hat - b|| / ||b||, the quantity DivNorm training drives
/// down. A useless model scores ~1 (p-hat = 0), PCG scores ~0.
double residual_ratio(nn::Network& net,
                      const std::vector<core::TrainingSample>& held_out) {
  core::NeuralProjection proj(net);
  double acc = 0.0;
  for (const auto& s : held_out) {
    const int n = s.rhs.nx();
    fluid::GridF p(n, n, 0.0f);
    proj.solve(s.flags, s.rhs, &p);
    fluid::GridF ap(n, n, 0.0f);
    fluid::apply_pressure_laplacian(p, s.flags, &ap);
    double rn = 0.0;
    double bn = 0.0;
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        if (!s.flags.is_fluid(i, j)) continue;
        const double r = static_cast<double>(ap(i, j)) - s.rhs(i, j);
        rn += r * r;
        bn += static_cast<double>(s.rhs(i, j)) * s.rhs(i, j);
      }
    }
    acc += std::sqrt(rn / std::max(bn, 1e-20));
  }
  return acc / static_cast<double>(held_out.size());
}

TEST(Training, TrainedSurrogateBeatsUntrained) {
  const auto problems = workload::generate_problems(2, small_params(), 4);
  const auto samples = core::collect_training_data(problems, 2);

  util::Rng rng(8);
  auto untrained = modelgen::build_network(modelgen::tompson_spec(4), rng);
  auto trained = untrained;  // Same initial weights.
  core::SurrogateTrainParams params;
  params.epochs = 10;
  core::train_surrogate(&trained, samples, params, rng);

  const auto held_out_problems =
      workload::generate_problems(1, small_params(), 5);
  auto held_out = core::collect_training_data(held_out_problems, 4);
  ASSERT_FALSE(held_out.empty());

  const double before = residual_ratio(untrained, held_out);
  const double after = residual_ratio(trained, held_out);
  EXPECT_LT(after, before);
  // DivNorm training must actually reduce divergence, not just tie zero.
  EXPECT_LT(after, 0.9);
}

TEST(Training, SupervisedObjectiveAlsoLearns) {
  const auto problems = workload::generate_problems(2, small_params(), 6);
  const auto samples = core::collect_training_data(problems, 2);
  util::Rng rng(9);
  auto net = modelgen::build_network(modelgen::tompson_spec(4), rng);
  core::SurrogateTrainParams params;
  params.objective = core::SurrogateTrainParams::Objective::kPressureMse;
  params.epochs = 2;
  const double loss = core::train_surrogate(&net, samples, params, rng);
  EXPECT_TRUE(std::isfinite(loss));
  // Outputs stay finite under the supervised objective too.
  const auto& s = samples.front();
  double inv = 0.0;
  const auto out = net.forward(core::encode_solver_input(s.flags, s.rhs, &inv),
                               false);
  for (std::size_t k = 0; k < out.numel(); ++k) {
    EXPECT_TRUE(std::isfinite(out[k]));
  }
}

TEST(NeuralProjection, ProducesFiniteBoundedPressure) {
  const auto problems = workload::generate_problems(1, small_params(), 10);
  const auto samples = core::collect_training_data(problems, 4);
  ASSERT_FALSE(samples.empty());

  util::Rng rng(10);
  auto net = modelgen::build_network(modelgen::tompson_spec(4), rng);
  core::SurrogateTrainParams params;
  params.epochs = 4;
  core::train_surrogate(&net, samples, params, rng);

  core::NeuralProjection proj(std::move(net), "test");
  EXPECT_EQ(proj.name(), "test");
  const auto& s = samples.front();
  fluid::GridF p(24, 24, 0.0f);
  const auto stats = proj.solve(s.flags, s.rhs, &p);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.flops, 0u);
  EXPECT_EQ(stats.iterations, 1);
  for (std::size_t k = 0; k < p.size(); ++k) {
    EXPECT_TRUE(std::isfinite(p[k]));
  }
  // Pressure zero outside fluid cells.
  EXPECT_FLOAT_EQ(p(0, 0), 0.0f);
}

TEST(NeuralProjection, SimulationRemainsStable) {
  // The critical end-to-end property: an NN-projected smoke sim must not
  // blow up over a full run (velocities bounded, density in range).
  const auto train_problems =
      workload::generate_problems(2, small_params(), 11);
  const auto samples = core::collect_training_data(train_problems, 2);
  util::Rng rng(11);
  auto net = modelgen::build_network(modelgen::tompson_spec(4), rng);
  core::SurrogateTrainParams params;
  params.epochs = 6;
  core::train_surrogate(&net, samples, params, rng);

  auto eval_params = small_params();
  eval_params.steps = 24;
  const auto eval_problems = workload::generate_problems(1, eval_params, 12);
  core::NeuralProjection proj(std::move(net));
  const auto run = workload::run_simulation(eval_problems[0], &proj);
  for (std::size_t k = 0; k < run.final_density.size(); ++k) {
    ASSERT_TRUE(std::isfinite(run.final_density[k]));
  }
  for (const auto& t : run.telemetry) {
    ASSERT_TRUE(std::isfinite(t.div_norm));
  }
  EXPECT_GT(run.final_density.sum(), 0.0);
}

TEST(TrainModelHelper, ProducesMeasuredModel) {
  const auto problems = workload::generate_problems(1, small_params(), 13);
  const auto samples = core::collect_training_data(problems, 4);
  util::Rng rng(13);
  core::SurrogateTrainParams params;
  params.epochs = 1;
  auto model = core::train_model(modelgen::yang_spec(), samples, params, rng,
                                 "baseline");
  EXPECT_EQ(model.origin, "baseline");
  EXPECT_GT(model.net.param_count(), 0u);

  const auto refs = workload::reference_runs(problems);
  core::measure_model(&model, problems, refs);
  EXPECT_EQ(model.records.records.size(), 1u);
  EXPECT_GT(model.mean_seconds, 0.0);
  EXPECT_GE(model.mean_quality, 0.0);
}

}  // namespace
}  // namespace sfn
