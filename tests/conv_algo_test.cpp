// Tests for the inference fast path: im2col+GEMM vs naive conv parity,
// ConvAlgo dispatch, batched evaluation, and workspace reuse (the
// steady-state inference loop must not touch the heap).

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "nn/im2col.hpp"
#include "nn/network.hpp"
#include "nn/workspace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

// ---------------------------------------------------------------------------
// Global allocation counter. Only counts while armed, so gtest bookkeeping
// between tests does not pollute the workspace-reuse assertions.
// GCC pairs the inlined malloc-backed operator new with the free-backed
// operator delete and warns; the pairing is intentional here.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// ---------------------------------------------------------------------------

namespace {

using namespace sfn;
using nn::Shape;
using nn::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(shape);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

void expect_close(const Tensor& a, const Tensor& b, double rel_tol) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const double va = a[i];
    const double vb = b[i];
    const double tol = rel_tol * std::max(1.0, std::abs(va));
    ASSERT_NEAR(va, vb, tol) << "at flat index " << i;
  }
}

struct ConvCase {
  int in_c;
  int out_c;
  int k;
  int h;
  int w;
  bool residual;
};

TEST(ConvAlgoParity, GemmMatchesNaiveAcrossShapes) {
  const ConvCase cases[] = {
      {1, 1, 1, 8, 8, false},    {2, 8, 3, 16, 16, false},
      {8, 8, 3, 19, 23, true},   {16, 16, 3, 32, 32, false},
      {16, 16, 3, 17, 13, true}, {4, 6, 5, 21, 21, false},
      {8, 8, 5, 15, 33, true},   {16, 1, 1, 24, 24, false},
      {3, 5, 5, 9, 31, false},   {8, 8, 1, 19, 17, true},
  };
  nn::Workspace ws;
  for (const auto& c : cases) {
    SCOPED_TRACE(testing::Message()
                 << "in_c=" << c.in_c << " out_c=" << c.out_c << " k=" << c.k
                 << " h=" << c.h << " w=" << c.w << " res=" << c.residual);
    nn::Conv2D conv(c.in_c, c.out_c, c.k, c.residual);
    const Tensor input = random_tensor(
        Shape{c.in_c, c.h, c.w},
        0x900dull ^ (static_cast<std::uint64_t>(c.in_c) << 8) ^ c.k);
    Tensor naive;
    Tensor gemm;
    conv.forward_naive_into(input, naive);
    conv.forward_gemm_into(input, gemm, ws);
    expect_close(naive, gemm, 1e-5);
  }
}

TEST(ConvAlgoParity, Im2colUnfoldsCorrectly) {
  const int c = 3, h = 5, w = 7, k = 3;
  const Tensor input = random_tensor(Shape{c, h, w}, 77);
  std::vector<float> col(static_cast<std::size_t>(c) * k * k * h * w);
  nn::im2col(input.data().data(), c, h, w, k, col.data());

  const int pad = k / 2;
  const std::size_t n_pixels = static_cast<std::size_t>(h) * w;
  for (int ic = 0; ic < c; ++ic) {
    for (int ky = 0; ky < k; ++ky) {
      for (int kx = 0; kx < k; ++kx) {
        const std::size_t r = (static_cast<std::size_t>(ic) * k + ky) * k + kx;
        for (int y = 0; y < h; ++y) {
          for (int x = 0; x < w; ++x) {
            const int sy = y + ky - pad;
            const int sx = x + kx - pad;
            const float expected =
                (sy >= 0 && sy < h && sx >= 0 && sx < w)
                    ? input.at(ic, sy, sx)
                    : 0.0f;
            const std::size_t n = static_cast<std::size_t>(y) * w + x;
            ASSERT_EQ(expected, col[r * n_pixels + n])
                << "r=" << r << " y=" << y << " x=" << x;
          }
        }
      }
    }
  }
}

TEST(ConvAlgoParity, RangedIm2colMatchesFull) {
  const int c = 2, h = 9, w = 11, k = 5;
  const Tensor input = random_tensor(Shape{c, h, w}, 91);
  const std::size_t rows = static_cast<std::size_t>(c) * k * k;
  const std::size_t n_pixels = static_cast<std::size_t>(h) * w;
  std::vector<float> full(rows * n_pixels);
  nn::im2col(input.data().data(), c, h, w, k, full.data());

  const std::size_t n0 = 13, n1 = 61;  // Deliberately crosses image rows.
  std::vector<float> part(rows * (n1 - n0));
  nn::im2col_range(input.data().data(), c, h, w, k, n0, n1, part.data());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t n = n0; n < n1; ++n) {
      ASSERT_EQ(full[r * n_pixels + n], part[r * (n1 - n0) + (n - n0)]);
    }
  }
}

TEST(ConvAlgoParity, SgemmAccMatchesReference) {
  const int M = 5, K = 37;
  const std::size_t N = 67;  // Not a multiple of the strip width.
  util::Rng rng(123);
  std::vector<float> a(static_cast<std::size_t>(M) * K);
  std::vector<float> b(static_cast<std::size_t>(K) * N);
  std::vector<float> c(static_cast<std::size_t>(M) * N);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : c) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<float> expected = c;
  for (int i = 0; i < M; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      double acc = expected[static_cast<std::size_t>(i) * N + j];
      for (int p = 0; p < K; ++p) {
        acc += static_cast<double>(a[static_cast<std::size_t>(i) * K + p]) *
               b[static_cast<std::size_t>(p) * N + j];
      }
      expected[static_cast<std::size_t>(i) * N + j] = static_cast<float>(acc);
    }
  }

  nn::sgemm_acc(M, N, K, a.data(), K, b.data(), N, c.data(), N);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(expected[i], c[i], 1e-4) << "at " << i;
  }
}

TEST(ConvAlgoDispatch, OverrideForcesAlgorithm) {
  nn::Conv2D conv(16, 16, 3);
  const Shape big{16, 64, 64};
  const Shape tiny{16, 4, 4};

  nn::set_conv_algo_override(nn::ConvAlgo::kNaive);
  EXPECT_EQ(nn::ConvAlgo::kNaive, conv.choose_algo(big));
  nn::set_conv_algo_override(nn::ConvAlgo::kIm2colGemm);
  EXPECT_EQ(nn::ConvAlgo::kIm2colGemm, conv.choose_algo(tiny));
  nn::set_conv_algo_override(nn::ConvAlgo::kAuto);
  // Auto prefers the packed microkernel for shapes wide enough to fill
  // register panels, and the naive loop for tiny ones.
  EXPECT_EQ(nn::ConvAlgo::kPacked, conv.choose_algo(big));
  EXPECT_EQ(nn::ConvAlgo::kNaive, conv.choose_algo(tiny));

  // A per-layer precision beats any process-wide override: a quantized
  // candidate must never silently run at full precision.
  conv.set_precision(nn::Precision::kInt8);
  nn::set_conv_algo_override(nn::ConvAlgo::kIm2colGemm);
  EXPECT_EQ(nn::ConvAlgo::kInt8, conv.choose_algo(big));
  conv.set_precision(nn::Precision::kBf16);
  EXPECT_EQ(nn::ConvAlgo::kBf16, conv.choose_algo(big));
  conv.set_precision(nn::Precision::kFloat32);
  nn::set_conv_algo_override(nn::ConvAlgo::kAuto);
}

TEST(ConvAlgoDispatch, ForwardIntoMatchesForward) {
  nn::Network net;
  net.emplace<nn::Conv2D>(2, 8, 3);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2D>(8, 8, 3, /*residual=*/true);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2D>(8, 1, 1);

  const Tensor input = random_tensor(Shape{2, 33, 31}, 5);
  const Tensor ref = net.forward(input, /*train=*/false);
  nn::Workspace ws;
  const Tensor& fast = net.forward_inference(input, ws);
  expect_close(ref, fast, 1e-5);
}

TEST(ForwardBatch, MatchesSequentialInference) {
  nn::Network net;
  net.emplace<nn::Conv2D>(2, 8, 3);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2D>(8, 8, 3, /*residual=*/true);
  net.emplace<nn::Conv2D>(8, 1, 1);

  std::vector<Tensor> inputs;
  for (int i = 0; i < 13; ++i) {
    inputs.push_back(random_tensor(Shape{2, 24, 24}, 1000 + i));
  }

  nn::Workspace ws;
  std::vector<Tensor> expected;
  for (const auto& in : inputs) {
    expected.push_back(net.forward_inference(in, ws));
  }

  util::ThreadPool pool(4);
  const std::vector<Tensor> batched = net.forward_batch(inputs, pool);
  ASSERT_EQ(expected.size(), batched.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ASSERT_EQ(expected[i].shape(), batched[i].shape());
    for (std::size_t j = 0; j < batched[i].numel(); ++j) {
      // The batch path runs the exact same kernels, so results are
      // bit-identical to sequential evaluation.
      ASSERT_EQ(expected[i][j], batched[i][j]) << "problem " << i;
    }
  }
}

TEST(ConvAlgoDispatch, OverrideFlipDuringForwardBatchIsSafe) {
  // set_conv_algo_override is documented as safe to call while inference
  // runs on other threads (atomic with acquire/release ordering): a flip
  // changes which kernel a conv picks, never the result beyond kernel
  // tolerance. TSan verifies the absence of a data race; this test verifies
  // the correctness contract by hammering flips while forward_batch runs.
  nn::Network net;
  net.emplace<nn::Conv2D>(2, 8, 3);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2D>(8, 8, 3, /*residual=*/true);
  net.emplace<nn::Conv2D>(8, 1, 1);

  std::vector<Tensor> inputs;
  for (int i = 0; i < 24; ++i) {
    inputs.push_back(random_tensor(Shape{2, 24, 24}, 4000 + i));
  }

  nn::set_conv_algo_override(nn::ConvAlgo::kAuto);
  nn::Workspace ws;
  std::vector<Tensor> expected;
  for (const auto& in : inputs) {
    expected.push_back(net.forward_inference(in, ws));
  }

  util::ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::thread flipper([&stop] {
    const nn::ConvAlgo algos[] = {nn::ConvAlgo::kNaive,
                                  nn::ConvAlgo::kIm2colGemm,
                                  nn::ConvAlgo::kAuto};
    std::size_t k = 0;
    while (!stop.load(std::memory_order_acquire)) {
      nn::set_conv_algo_override(algos[k++ % 3]);
    }
  });

  for (int round = 0; round < 8; ++round) {
    const std::vector<Tensor> batched = net.forward_batch(inputs, pool);
    ASSERT_EQ(expected.size(), batched.size());
    for (std::size_t i = 0; i < batched.size(); ++i) {
      expect_close(expected[i], batched[i], 1e-5);
    }
  }

  stop.store(true, std::memory_order_release);
  flipper.join();
  nn::set_conv_algo_override(nn::ConvAlgo::kAuto);
}

TEST(WorkspaceReuse, SteadyStateInferenceIsAllocationFree) {
  // Single OpenMP thread so runtime team bookkeeping cannot allocate
  // behind our back; the property under test is our own kernel code.
  const int old_threads = omp_get_max_threads();
  omp_set_num_threads(1);

  nn::Network net;
  net.emplace<nn::Conv2D>(2, 8, 3);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2D>(8, 8, 3, /*residual=*/true);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2D>(8, 1, 1);

  const Tensor input = random_tensor(Shape{2, 48, 48}, 9);
  nn::Workspace ws;
  for (int warm = 0; warm < 3; ++warm) {
    net.forward_inference(input, ws);
  }

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  double checksum = 0.0;
  for (int i = 0; i < 8; ++i) {
    checksum += net.forward_inference(input, ws).sum();
  }
  g_count_allocs.store(false);

  EXPECT_EQ(0u, g_alloc_count.load())
      << "steady-state forward_inference touched the heap";
  EXPECT_TRUE(std::isfinite(checksum));
  omp_set_num_threads(old_threads);
}

}  // namespace
