// Stress tests for util::ThreadPool, sized to give TSan enough
// interleavings to catch submit/shutdown and parallel_for races. These
// tests are part of the sanitizer gate: they must run clean under
// -DSFN_SANITIZE=thread (see DESIGN.md §9).

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <thread>
#include <vector>

namespace sfn::util {
namespace {

TEST(ThreadPoolStressTest, ConcurrentSubmittersSeeEveryTask) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksPerSubmitter = 64;
  std::atomic<int> executed{0};

  std::vector<std::thread> submitters;
  std::vector<std::future<void>> futures[kSubmitters];
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &executed, &futures, s] {
      for (int t = 0; t < kTasksPerSubmitter; ++t) {
        futures[s].push_back(pool.submit(
            [&executed] { executed.fetch_add(1, std::memory_order_relaxed); }));
      }
    });
  }
  for (auto& thread : submitters) {
    thread.join();
  }
  for (auto& per_submitter : futures) {
    for (auto& future : per_submitter) {
      future.get();
    }
  }
  EXPECT_EQ(executed.load(), kSubmitters * kTasksPerSubmitter);
}

TEST(ThreadPoolStressTest, ParallelForFromMultipleThreads) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr std::size_t kCount = 512;
  std::atomic<std::size_t> total{0};

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &total] {
      pool.parallel_for(kCount, [&total](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& thread : callers) {
    thread.join();
  }
  EXPECT_EQ(total.load(), kCallers * kCount);
}

TEST(ThreadPoolStressTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount,
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolStressTest, RapidConstructDestroy) {
  for (int round = 0; round < 32; ++round) {
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    auto f1 = pool.submit([&ran] { ran.fetch_add(1); });
    auto f2 = pool.submit([&ran] { ran.fetch_add(1); });
    f1.get();
    f2.get();
    EXPECT_EQ(ran.load(), 2);
    // Destructor runs here with an empty queue; next round re-creates
    // the workers immediately, hammering startup/shutdown handshakes.
  }
}

TEST(ThreadPoolStressTest, DestroyWithQueuedTasksRunsThemAll) {
  // The pool drains its queue on destruction; futures obtained before the
  // destructor must all resolve.
  std::vector<std::future<void>> futures;
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int t = 0; t < 128; ++t) {
      futures.push_back(pool.submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // Destructor fires while most tasks are still queued.
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(executed.load(), 128);
}

TEST(ThreadPoolStressTest, TasksSubmittingTasks) {
  // Tasks that submit further tasks exercise the queue lock from worker
  // threads, not just the owner thread.
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  std::vector<std::future<void>> outer;
  Mutex inner_mutex;
  std::vector<std::future<void>> inner;
  for (int t = 0; t < 32; ++t) {
    outer.push_back(pool.submit([&] {
      auto f = pool.submit(
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
      const MutexLock lock(inner_mutex);
      inner.push_back(std::move(f));
    }));
  }
  for (auto& future : outer) {
    future.get();
  }
  for (auto& future : inner) {
    future.get();
  }
  EXPECT_EQ(executed.load(), 32);
}

}  // namespace
}  // namespace sfn::util
