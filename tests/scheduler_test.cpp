// Cooperative event scheduler + admission control (DESIGN.md §16): many
// sessions multiplexing over few workers with bit-identical results,
// per-tenant budgets, the scene-hash result cache, degraded-mode
// shedding through the quarantine ledger, queue-capacity validation, and
// the blocked-submit vs shutdown liveness contract.

#include "core/session.hpp"
#include "fluid/pcg.hpp"
#include "serve/session_server.hpp"
#include "serve_test_support.hpp"
#include "util/annotations.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace sfn {
namespace {

void expect_bit_identical(const fluid::GridF& expected,
                          const fluid::GridF& actual,
                          const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (std::size_t k = 0; k < expected.size(); ++k) {
    const float a = expected[k];
    const float b = actual[k];
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(float)), 0)
        << label << ": cell " << k << " differs: " << a << " vs " << b;
  }
}

/// Solver wrapper that parks its session's first (and every) solve until
/// the gate opens — a deterministic way to keep a job "running" while the
/// test exercises admission decisions that depend on in-flight state.
class GatedSolver final : public fluid::PoissonSolver {
 public:
  struct Gate {
    util::Mutex m;
    util::CondVar cv;
    bool open SFN_GUARDED_BY(m) = false;

    void release() {
      {
        const util::MutexLock lock(m);
        open = true;
      }
      cv.notify_all();
    }
    void wait_open() {
      const util::MutexLock lock(m);
      while (!open) {
        cv.wait(m);
      }
    }
  };

  GatedSolver(std::unique_ptr<fluid::PoissonSolver> inner,
              std::shared_ptr<Gate> gate)
      : inner_(std::move(inner)), gate_(std::move(gate)) {}

  fluid::SolveStats solve(const fluid::FlagGrid& flags,
                          const fluid::GridF& rhs,
                          fluid::GridF* pressure) override {
    gate_->wait_open();
    return inner_->solve(flags, rhs, pressure);
  }

  [[nodiscard]] std::string name() const override { return "gated"; }

 private:
  std::unique_ptr<fluid::PoissonSolver> inner_;
  std::shared_ptr<Gate> gate_;
};

core::SessionConfig gated_config(std::shared_ptr<GatedSolver::Gate> gate) {
  core::SessionConfig config;
  config.solver_decorator = [gate = std::move(gate)](
                                std::size_t,
                                std::unique_ptr<fluid::PoissonSolver> inner) {
    return std::make_unique<GatedSolver>(std::move(inner), gate);
  };
  return config;
}

TEST(Scheduler, CoopMultiplexesManySessionsOverFewWorkers) {
  // The tentpole claim: 64 concurrent sessions on 2 OS threads, yielding
  // every step, and every result is bit-identical to a solo run.
  const auto artifacts = test::make_test_artifacts();
  constexpr int kSessions = 64;

  serve::ServerConfig config;
  config.sched = serve::ServerConfig::Sched::kCoop;
  config.session_threads = 2;
  config.slice_steps = 1;  // Maximum interleaving.
  config.queue_capacity = kSessions;
  config.degraded_shedding = false;  // This test wants full-quality runs.
  serve::SessionServer server(config);

  std::vector<workload::InputProblem> problems;
  std::vector<serve::SessionServer::JobId> ids;
  for (int i = 0; i < kSessions; ++i) {
    problems.push_back(test::make_test_problem(5000 + i, 16, 6));
    ids.push_back(server.submit_adaptive(problems.back(), artifacts));
  }
  for (int i = 0; i < kSessions; ++i) {
    const auto result = server.wait(ids[i]);
    if (i % 16 == 0) {  // Spot-check bit-identity against solo runs.
      const auto solo = core::run_adaptive(problems[i], artifacts);
      expect_bit_identical(solo.final_density, result.final_density,
                           "coop session " + std::to_string(i));
      EXPECT_EQ(solo.model_per_step, result.model_per_step);
    } else {
      EXPECT_GT(result.final_density.size(), 0u);
    }
  }
  EXPECT_EQ(server.jobs_completed(), static_cast<std::uint64_t>(kSessions));
  // Coalescer backlog stays bounded by concurrent *slices*, not by the
  // (much larger) number of co-resident sessions.
  EXPECT_LE(server.coalescer().queue_high_water(), config.session_threads);
}

TEST(Scheduler, QueueCapacityZeroClampedEverywhere) {
  // Constructor-side validation (a zero queue would deadlock kBlock and
  // always-throw kReject): clamped to 1 with a warning, server still
  // serves — under both overflow policies.
  for (const auto overflow : {serve::ServerConfig::Overflow::kBlock,
                              serve::ServerConfig::Overflow::kReject}) {
    serve::ServerConfig config;
    config.queue_capacity = 0;
    config.overflow = overflow;
    config.session_threads = 1;
    serve::SessionServer server(config);
    EXPECT_EQ(server.config().queue_capacity, 1u);
    const auto artifacts = test::make_test_artifacts();
    const auto id =
        server.submit_fixed(test::make_test_problem(6000, 16, 4),
                            artifacts.library[0]);
    EXPECT_GT(server.wait(id).final_density.size(), 0u);
  }

  // Env-side validation: SFN_SERVE_QUEUE=0 is clamped in from_env too.
  ::setenv("SFN_SERVE_QUEUE", "0", 1);
  ::setenv("SFN_SCHED_SLICE", "0", 1);
  ::setenv("SFN_SCHED", "threads", 1);
  const auto from_env = serve::ServerConfig::from_env();
  ::unsetenv("SFN_SERVE_QUEUE");
  ::unsetenv("SFN_SCHED_SLICE");
  ::unsetenv("SFN_SCHED");
  EXPECT_EQ(from_env.queue_capacity, 1u);
  EXPECT_EQ(from_env.slice_steps, 1);
  EXPECT_EQ(from_env.sched, serve::ServerConfig::Sched::kThreads);
  EXPECT_EQ(serve::ServerConfig::from_env().sched,
            serve::ServerConfig::Sched::kCoop);
}

TEST(Scheduler, BlockedSubmitWokenByShutdown) {
  // Liveness regression (the bug this PR fixes): a submitter blocked on a
  // full queue must be woken by a racing shutdown() and leave with
  // ServerStoppedError — not sleep forever on a queue that will never
  // drain below capacity.
  const auto artifacts = test::make_test_artifacts();
  auto gate = std::make_shared<GatedSolver::Gate>();

  serve::ServerConfig config;
  config.session_threads = 1;
  config.max_active_sessions = 1;
  config.queue_capacity = 1;
  config.overflow = serve::ServerConfig::Overflow::kBlock;
  serve::SessionServer server(config);

  // Fill the server: one gated job holds the activation slot, one more
  // occupies the whole queue.
  const auto running = server.submit_fixed(
      test::make_test_problem(6100, 16, 4), artifacts.library[0],
      gated_config(gate));
  const auto queued = server.submit_fixed(test::make_test_problem(6101, 16, 4),
                                          artifacts.library[0]);

  bool stopped_error = false;
  std::thread submitter([&] {
    try {
      server.submit_fixed(test::make_test_problem(6102, 16, 4),
                          artifacts.library[0]);
    } catch (const serve::ServerStoppedError&) {
      stopped_error = true;
    }
  });
  // Give the submitter time to reach the blocking wait, then race
  // shutdown against it; release the gate afterwards so the drain can
  // finish. If the wake-up were missing, `submitter` (and shutdown's
  // drain) would hang and the test would time out.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread stopper([&] { server.shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate->release();
  submitter.join();
  stopper.join();

  EXPECT_TRUE(stopped_error);
  EXPECT_GT(server.wait(running).final_density.size(), 0u);
  EXPECT_GT(server.wait(queued).final_density.size(), 0u);
}

TEST(Scheduler, TenantBudgetBoundsInflightPerTenant) {
  const auto artifacts = test::make_test_artifacts();
  auto gate = std::make_shared<GatedSolver::Gate>();

  serve::ServerConfig config;
  config.session_threads = 1;
  config.max_active_sessions = 1;  // Keep admitted jobs visibly in flight.
  config.queue_capacity = 8;
  config.tenant_budget = 2;
  serve::SessionServer server(config);

  serve::JobOptions tenant_a;
  tenant_a.tenant = "tenant-a";
  serve::JobOptions tenant_b;
  tenant_b.tenant = "tenant-b";

  const auto first = server.submit_fixed(test::make_test_problem(6200, 16, 4),
                                         artifacts.library[0],
                                         gated_config(gate), tenant_a);
  const auto second = server.submit_fixed(
      test::make_test_problem(6201, 16, 4), artifacts.library[0], {},
      tenant_a);
  // tenant-a is at budget (2 in flight): both throwing and non-throwing
  // admission must shed, while tenant-b is unaffected.
  EXPECT_THROW(server.submit_fixed(test::make_test_problem(6202, 16, 4),
                                   artifacts.library[0], {}, tenant_a),
               serve::TenantBudgetError);
  EXPECT_FALSE(server
                   .try_submit_fixed(test::make_test_problem(6203, 16, 4),
                                     artifacts.library[0], {}, tenant_a)
                   .has_value());
  const auto other = server.submit_fixed(test::make_test_problem(6204, 16, 4),
                                         artifacts.library[0], {}, tenant_b);

  gate->release();
  server.wait_all();
  // Budget released with the finished jobs: tenant-a submits again.
  const auto third = server.submit_fixed(test::make_test_problem(6205, 16, 4),
                                         artifacts.library[0], {}, tenant_a);
  for (const auto id : {first, second, other, third}) {
    EXPECT_GT(server.wait(id).final_density.size(), 0u);
  }
}

TEST(Scheduler, ResultCacheServesIdenticalResubmissions) {
  const auto artifacts = test::make_test_artifacts();
  const auto& model = artifacts.library[0];
  const auto problem = test::make_test_problem(6300, 16, 6);

  serve::ServerConfig config;
  config.session_threads = 2;
  config.result_cache_entries = 4;
  serve::SessionServer server(config);

  const auto first = server.wait(server.submit_fixed(problem, model));
  EXPECT_EQ(server.cache_hits(), 0u);

  // Bit-identical resubmission: served from the cache, still redeemable
  // through the normal wait() path, result bit-identical.
  const auto hit = server.wait(server.submit_fixed(problem, model));
  EXPECT_EQ(server.cache_hits(), 1u);
  expect_bit_identical(first.final_density, hit.final_density, "cache hit");
  EXPECT_EQ(first.model_per_step, hit.model_per_step);

  // Opt-out and different-scene submissions bypass the cache.
  serve::JobOptions uncached;
  uncached.cacheable = false;
  server.wait(server.submit_fixed(problem, model, {}, uncached));
  server.wait(
      server.submit_fixed(test::make_test_problem(6301, 16, 6), model));
  EXPECT_EQ(server.cache_hits(), 1u);

  // Adaptive submissions are cached on the same ladder.
  const auto a1 = server.wait(server.submit_adaptive(problem, artifacts));
  const auto a2 = server.wait(server.submit_adaptive(problem, artifacts));
  EXPECT_EQ(server.cache_hits(), 2u);
  expect_bit_identical(a1.final_density, a2.final_density, "adaptive hit");
}

TEST(Scheduler, ResultCacheEvictsLeastRecentlyUsed) {
  const auto artifacts = test::make_test_artifacts();
  const auto& model = artifacts.library[0];
  serve::ServerConfig config;
  config.session_threads = 1;
  config.result_cache_entries = 1;
  serve::SessionServer server(config);

  const auto problem_a = test::make_test_problem(6400, 16, 4);
  const auto problem_b = test::make_test_problem(6401, 16, 4);
  server.wait(server.submit_fixed(problem_a, model));
  server.wait(server.submit_fixed(problem_b, model));  // Evicts A.
  server.wait(server.submit_fixed(problem_a, model));  // Miss.
  EXPECT_EQ(server.cache_hits(), 0u);
  server.wait(server.submit_fixed(problem_a, model));  // Hit.
  EXPECT_EQ(server.cache_hits(), 1u);
}

TEST(Scheduler, DegradedSheddingPinsCheapestHealthyModel) {
  const auto artifacts = test::make_test_artifacts();
  auto gate = std::make_shared<GatedSolver::Gate>();

  serve::ServerConfig config;
  config.session_threads = 1;
  config.max_active_sessions = 1;
  config.queue_capacity = 4;
  config.shed_watermark = 0.5;  // Backlog of 2 trips shedding.
  serve::SessionServer server(config);
  // Operator marked the cheapest candidate unhealthy: degraded jobs must
  // land on the cheapest *surviving* one (the quarantine ledger).
  server.mark_model_unhealthy(artifacts.library[0].records.model_id);
  EXPECT_EQ(server.unhealthy_model_count(), 1u);

  const auto held = server.submit_fixed(test::make_test_problem(6500, 16, 4),
                                        artifacts.library[0],
                                        gated_config(gate));
  const auto problem = test::make_test_problem(6501, 16, 6);
  const auto full1 = server.submit_adaptive(problem, artifacts);   // queue 1
  const auto full2 = server.submit_adaptive(problem, artifacts);   // queue 2
  const auto shed = server.submit_adaptive(
      test::make_test_problem(6502, 16, 6), artifacts);  // backlog ≥ 2: shed
  EXPECT_EQ(server.jobs_degraded(), 1u);

  gate->release();
  const auto shed_result = server.wait(shed);
  // The degraded job ran as a fixed session pinned to model 1 (model 0 is
  // unhealthy): every step is attributed to it and no switching happened.
  for (const std::size_t step_model : shed_result.model_per_step) {
    EXPECT_EQ(step_model, artifacts.library[1].records.model_id);
  }
  EXPECT_TRUE(shed_result.events.empty());
  for (const auto id : {held, full1, full2}) {
    EXPECT_GT(server.wait(id).final_density.size(), 0u);
  }
}

/// Overwrites every second pressure answer with NaN so the health guard
/// trips on a fixed cadence and quarantines the session's models.
class PoisonSolver final : public fluid::PoissonSolver {
 public:
  explicit PoisonSolver(std::unique_ptr<fluid::PoissonSolver> inner)
      : inner_(std::move(inner)) {}

  fluid::SolveStats solve(const fluid::FlagGrid& flags,
                          const fluid::GridF& rhs,
                          fluid::GridF* pressure) override {
    auto stats = inner_->solve(flags, rhs, pressure);
    if (++calls_ % 2 == 0) {
      for (std::size_t k = 0; k < pressure->size(); ++k) {
        (*pressure)[k] = std::numeric_limits<float>::quiet_NaN();
      }
    }
    return stats;
  }

  [[nodiscard]] std::string name() const override { return "poison"; }

 private:
  std::unique_ptr<fluid::PoissonSolver> inner_;
  int calls_ = 0;
};

TEST(Scheduler, QuarantineLedgerFedByFinishedSessions) {
  // A session whose guard quarantined a model reports it in its result;
  // the server folds that into the ledger degraded scheduling reads.
  const auto artifacts = test::make_test_artifacts();
  serve::ServerConfig config;
  config.session_threads = 1;
  serve::SessionServer server(config);
  EXPECT_EQ(server.unhealthy_model_count(), 0u);
  server.mark_model_unhealthy(7);
  server.mark_model_unhealthy(7);  // Idempotent.
  EXPECT_EQ(server.unhealthy_model_count(), 1u);

  core::SessionConfig poisoned;
  poisoned.solver_decorator =
      [](std::size_t, std::unique_ptr<fluid::PoissonSolver> inner) {
        return std::make_unique<PoisonSolver>(std::move(inner));
      };
  const auto result = server.wait(server.submit_adaptive(
      test::make_test_problem(6600, 16, 10), artifacts, poisoned));
  ASSERT_FALSE(result.quarantined_models.empty());
  EXPECT_EQ(server.unhealthy_model_count(),
            1u + result.quarantined_models.size());
}

}  // namespace
}  // namespace sfn
