// Flight-recorder tests: an injected guard-trip burst (every solve
// corrupted through SessionConfig::solver_decorator) must produce a
// bounded chrome-trace dump containing the breaching session's scopes,
// an SLO breach must trigger its own dump, and disarmed reporting must
// be a no-op. The dump is also validated end-to-end by
// tools/check_trace.py --allow-partial (windows cut across scopes still
// open at dump time, so full nesting cannot hold).

#include "core/session.hpp"
#include "fluid/pcg.hpp"
#include "obs/eventlog.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/fallback.hpp"
#include "serve_test_support.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <utility>

namespace sfn {
namespace {

/// Corrupts every solve to NaN: each guarded step trips, giving a dense,
/// deterministic burst (see tests/fault_injection_test.cpp for the
/// cadence-controlled variant).
class NanSolver final : public fluid::PoissonSolver {
 public:
  explicit NanSolver(std::unique_ptr<fluid::PoissonSolver> inner)
      : inner_(std::move(inner)) {}

  fluid::SolveStats solve(const fluid::FlagGrid& flags, const fluid::GridF& rhs,
                          fluid::GridF* pressure) override {
    auto stats = inner_->solve(flags, rhs, pressure);
    for (std::size_t k = 0; k < pressure->size(); ++k) {
      (*pressure)[k] = std::numeric_limits<float>::quiet_NaN();
    }
    return stats;
  }

  [[nodiscard]] std::string name() const override {
    return "nan(" + inner_->name() + ")";
  }

 private:
  std::unique_ptr<fluid::PoissonSolver> inner_;
};

std::set<std::string> dump_scope_names(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::set<std::string> names;
  for (const auto& event : obs::parse_chrome_trace(in)) {
    names.insert(event.name);
  }
  return names;
}

TEST(FlightRecorder, GuardTripBurstTriggersBoundedDump) {
  const std::string dir = ::testing::TempDir() + "sfn_flight_burst";
  std::filesystem::create_directories(dir);
  const std::string log = dir + "/events.jsonl";
  obs::eventlog_open(log);

  const int before = obs::flight_dump_count();
  const obs::TraceMode prior_mode = obs::trace_mode();
  obs::FlightConfig config;
  config.dir = dir;
  config.window_s = 30.0;  // No rotation inside the test window.
  config.trip_threshold = 3;
  config.trip_window_s = 60.0;
  config.max_dumps = before + 2;
  config.cooldown_s = 0.0;
  ASSERT_TRUE(obs::flight_arm(config));
  EXPECT_TRUE(obs::flight_armed());
  EXPECT_EQ(obs::trace_mode(), obs::TraceMode::kFull);

  // Two candidates, every guarded solve poisoned: 3 trips quarantine each
  // candidate, so the run delivers exactly two bursts of trip_threshold
  // trips before degrading to the unguarded exact solver.
  const auto artifacts = test::make_test_artifacts();
  const auto problem = test::make_test_problem(17, /*grid=*/16, /*steps=*/12);
  core::SessionConfig session;
  session.guard = runtime::GuardParams{};  // Defaults, not env.
  session.solver_decorator = [](std::size_t,
                                std::unique_ptr<fluid::PoissonSolver>) {
    return std::make_unique<NanSolver>(std::make_unique<fluid::PcgSolver>());
  };
  const auto result = core::run_adaptive(problem, artifacts, session);
  obs::flight_disarm();
  EXPECT_FALSE(obs::flight_armed());
  EXPECT_EQ(obs::trace_mode(), prior_mode);
  EXPECT_EQ(result.quarantined_models.size(), 2u);

  // One dump per burst, capped by max_dumps — never one per extra trip.
  EXPECT_EQ(obs::flight_dump_count(), before + 2);
  const std::string path = obs::flight_last_dump_path();
  ASSERT_FALSE(path.empty());
  ASSERT_TRUE(std::filesystem::exists(path));

  // The dump holds the breaching session's scopes.
  const auto names = dump_scope_names(path);
  EXPECT_TRUE(names.count("session.step") == 1) << path;
  EXPECT_TRUE(names.count("runtime.fallback") == 1) << path;

  // End-to-end: the dump passes the repo's trace validator in its
  // bounded-window mode.
  if (std::system("python3 --version > /dev/null 2>&1") == 0) {
    const std::string cmd = std::string("python3 \"") + SFN_TOOLS_DIR +
                            "/check_trace.py\" \"" + path +
                            "\" --allow-partial --expect session.step "
                            "--expect runtime.fallback";
    EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  }

  // The event log recorded the arming, the trips and each dump.
  obs::eventlog_close();
  bool saw_armed = false;
  bool saw_trip = false;
  bool saw_dump = false;
  for (const auto& line : obs::eventlog_read_lines(log)) {
    saw_armed |= line.find("\"type\":\"flight_armed\"") != std::string::npos;
    saw_trip |= line.find("\"type\":\"guard_trip\"") != std::string::npos;
    saw_dump |= line.find("\"type\":\"flight_dump\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_armed);
  EXPECT_TRUE(saw_trip);
  EXPECT_TRUE(saw_dump);
}

TEST(FlightRecorder, SloBreachTriggersDump) {
  const std::string dir = ::testing::TempDir() + "sfn_flight_slo";
  std::filesystem::create_directories(dir);

  const int before = obs::flight_dump_count();
  const obs::TraceMode prior_mode = obs::trace_mode();
  obs::FlightConfig config;
  config.dir = dir;
  config.window_s = 30.0;
  config.trip_threshold = 1 << 20;  // Guard-trip trigger out of the way.
  config.slo_job_ms = 10.0;
  config.max_dumps = before + 1;
  config.cooldown_s = 0.0;
  ASSERT_TRUE(obs::flight_arm(config));

  // Put a recognisable scope into the rings before the breach.
  { obs::TraceScope scope("obstest.slo_span"); }

  obs::flight_check_job_slo("job-ok", 1.0, 5.0);  // Under budget: no dump.
  EXPECT_EQ(obs::flight_dump_count(), before);
  obs::flight_check_job_slo("job-slow", 1.0, 50.0);  // Breach: dump.
  EXPECT_EQ(obs::flight_dump_count(), before + 1);
  const std::string path = obs::flight_last_dump_path();
  obs::flight_disarm();
  EXPECT_EQ(obs::trace_mode(), prior_mode);

  ASSERT_FALSE(path.empty());
  EXPECT_TRUE(dump_scope_names(path).count("obstest.slo_span") == 1) << path;
  EXPECT_GE(obs::counter("obs.slo_breaches").value(), 1u);
}

TEST(FlightRecorder, DisarmedReportsAreNoOps) {
  ASSERT_FALSE(obs::flight_armed());
  const int before = obs::flight_dump_count();
  for (int i = 0; i < 32; ++i) {
    obs::flight_report_guard_trip(9);
  }
  obs::flight_check_job_slo("job-x", 1e6, 1e6);
  EXPECT_EQ(obs::flight_dump_count(), before);
}

}  // namespace
}  // namespace sfn
