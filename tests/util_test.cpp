#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>

namespace sfn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(123);
  util::Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1);
  util::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  util::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  util::Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  util::Rng rng(77);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  util::Rng a(42);
  util::Rng child = a.fork();
  // The child stream must not replay the parent's outputs.
  util::Rng parent_replay(42);
  parent_replay();  // fork consumed one draw.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent_replay()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BernoulliExtremes) {
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Timer, MeasuresElapsedTime) {
  util::Timer t;
  // A crude lower bound: do a little work.
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_LT(t.seconds(), 10.0);
}

TEST(AccumulatingTimer, SumsIntervals) {
  util::AccumulatingTimer t;
  t.add(1.5);
  t.add(0.5);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 2.0);
}

TEST(AccumulatingTimer, RestartBanksInFlightInterval) {
  // Regression: start() while running used to silently discard the
  // in-flight interval; it must accumulate it before restarting.
  util::AccumulatingTimer t;
  t.start();
  volatile double x = 0.0;
  for (int i = 0; i < 200000; ++i) x += i;
  t.start();  // Restart without stop(): the first interval must be banked.
  const double banked = t.total_seconds();
  EXPECT_GT(banked, 0.0);
  t.stop();
  EXPECT_GE(t.total_seconds(), banked);
  // stop() after stop() is a no-op, and the banked time persists.
  const double after_stop = t.total_seconds();
  t.stop();
  EXPECT_DOUBLE_EQ(t.total_seconds(), after_stop);
}

TEST(Table, RendersAlignedAndCsv) {
  util::Table table({"Method", "Time"});
  table.add_row({"PCG", "2.34e+08"});
  table.add_row({"Tompson", "7.19e+04"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("Method"), std::string::npos);
  EXPECT_NE(text.find("PCG"), std::string::npos);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("Method,Time"), std::string::npos);
  EXPECT_NE(csv.find("Tompson,7.19e+04"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  util::Table table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(util::fmt_sci(234000000.0, 2), "2.34e+08");
  EXPECT_EQ(util::fmt_pct(0.8827, 2), "88.27%");
}

TEST(Config, EnvFallback) {
  unsetenv("SFN_TEST_UNSET");
  EXPECT_EQ(util::env_int("SFN_TEST_UNSET", 17), 17);
  setenv("SFN_TEST_SET", "42", 1);
  EXPECT_EQ(util::env_int("SFN_TEST_SET", 0), 42);
  setenv("SFN_TEST_BAD", "abc", 1);
  EXPECT_EQ(util::env_int("SFN_TEST_BAD", 5), 5);
}

TEST(Config, ParsesFlags) {
  const char* argv[] = {"bench", "--scale=3", "--max-grid=64", "--steps=16",
                        "--seed=99"};
  const auto cfg =
      util::BenchConfig::from_args(5, const_cast<char**>(argv));
  EXPECT_EQ(cfg.scale, 3);
  EXPECT_EQ(cfg.max_grid, 64);
  EXPECT_EQ(cfg.time_steps, 16);
  EXPECT_EQ(cfg.seed, 99ull);
}

TEST(Config, ClampsInsaneValues) {
  const char* argv[] = {"bench", "--scale=-5", "--max-grid=2", "--steps=1"};
  const auto cfg =
      util::BenchConfig::from_args(4, const_cast<char**>(argv));
  EXPECT_GE(cfg.scale, 1);
  EXPECT_GE(cfg.max_grid, 16);
  EXPECT_GE(cfg.time_steps, 8);
}

TEST(ThreadPool, RunsAllTasks) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(1000, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, SubmitReturnsUsableFuture) {
  util::ThreadPool pool(2);
  std::atomic<int> value{0};
  auto f = pool.submit([&] { value = 7; });
  f.get();
  EXPECT_EQ(value.load(), 7);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  util::ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace sfn
