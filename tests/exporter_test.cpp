// Metrics exposition tests: render_prometheus() is validated with a
// small in-test parser of the Prometheus text format, and the HTTP
// endpoint is scraped over a real loopback socket (start(0) picks an
// ephemeral port). The scrape-under-load case runs writers concurrently
// with scrapes so the TSan leg covers the snapshot-vs-observe races.

#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "runtime/fallback.hpp"
#include "serve/session_server.hpp"
#include "serve_test_support.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace sfn {
namespace {

// --- Tiny HTTP client over a blocking loopback socket ---------------------

struct HttpResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

HttpResponse http_request(int port, const std::string& request) {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    ADD_FAILURE() << "socket() failed";
    return response;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    ADD_FAILURE() << "connect() to 127.0.0.1:" << port << " failed";
    return response;
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  // The server responds Connection: close, so read to EOF.
  std::string raw;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const auto head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    ADD_FAILURE() << "malformed HTTP response: " << raw;
    return response;
  }
  response.headers = raw.substr(0, head_end);
  response.body = raw.substr(head_end + 4);
  std::sscanf(raw.c_str(), "HTTP/1.1 %d", &response.status);
  return response;
}

HttpResponse http_get(int port, const std::string& path) {
  return http_request(port, "GET " + path +
                                " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                "Connection: close\r\n\r\n");
}

// --- Minimal Prometheus text-format parser --------------------------------

struct PromDoc {
  std::map<std::string, std::string> types;  ///< family -> counter|gauge|...
  std::map<std::string, double> samples;     ///< full sample name -> value
};

bool valid_family_chars(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      return false;
    }
  }
  return true;
}

/// Strict line-by-line parse; every violation is a test failure.
PromDoc parse_prometheus(const std::string& text) {
  PromDoc doc;
  std::set<std::string> helped;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(2));
      std::string keyword;
      std::string family;
      std::string rest;
      fields >> keyword >> family >> rest;
      EXPECT_TRUE(valid_family_chars(family)) << "line " << lineno;
      EXPECT_FALSE(rest.empty()) << "line " << lineno << ": bare " << keyword;
      if (keyword == "HELP") {
        EXPECT_TRUE(helped.insert(family).second)
            << "line " << lineno << ": duplicate HELP for " << family;
      } else {
        EXPECT_TRUE(rest == "counter" || rest == "gauge" ||
                    rest == "summary" || rest == "histogram" ||
                    rest == "untyped")
            << "line " << lineno << ": bad type " << rest;
        EXPECT_EQ(doc.types.count(family), 0u)
            << "line " << lineno << ": duplicate TYPE for " << family;
        doc.types[family] = rest;
      }
      continue;
    }
    if (line[0] == '#') {
      ADD_FAILURE() << "line " << lineno << ": unknown comment: " << line;
      continue;
    }
    const auto space = line.rfind(' ');
    if (space == std::string::npos || space == 0) {
      ADD_FAILURE() << "line " << lineno << ": not a sample: " << line;
      continue;
    }
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    const auto brace = name.find('{');
    std::string base = name.substr(0, brace);
    EXPECT_TRUE(valid_family_chars(base)) << "line " << lineno << ": " << name;
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << "line " << lineno << ": " << name;
    }
    // Every sample belongs to a declared family (directly or via a
    // summary's _sum/_count suffix).
    bool typed = doc.types.count(base) > 0;
    for (const char* suffix : {"_sum", "_count"}) {
      const std::string s = suffix;
      if (!typed && base.size() > s.size() &&
          base.compare(base.size() - s.size(), s.size(), s) == 0) {
        typed = doc.types.count(base.substr(0, base.size() - s.size())) > 0;
      }
    }
    EXPECT_TRUE(typed) << "line " << lineno << ": sample " << name
                       << " has no # TYPE header";
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != value.c_str() && *end == '\0')
        << "line " << lineno << ": bad value " << value;
    doc.samples[name] = parsed;
  }
  return doc;
}

/// Trip the health guard once through the real FallbackPolicy wiring so
/// runtime.fallbacks / runtime.fallback_latency exist in the registry.
void trip_guard_once() {
  fluid::FlagGrid flags(16, 16, fluid::CellType::kFluid);
  flags.set_smoke_box_boundary();
  fluid::GridF rhs(16, 16, 0.0f);
  rhs(8, 8) = 1.0f;
  fluid::GridF pressure(16, 16, std::numeric_limits<float>::quiet_NaN());
  runtime::FallbackPolicy policy{runtime::GuardParams{}};
  const auto outcome = policy.inspect(flags, rhs, &pressure, {});
  ASSERT_TRUE(outcome.fallback);
}

/// One tiny fixed job through the SessionServer so serve.queue_wait /
/// serve.job_duration{mode="fixed"} are observed by the real wiring.
void run_one_fixed_job() {
  const auto model = test::make_test_model(7, "exporter-model", 0,
                                           /*mean_quality=*/0.02,
                                           /*mean_seconds=*/0.01);
  const auto problem = test::make_test_problem(5, /*grid=*/16, /*steps=*/4);
  serve::ServerConfig config;
  config.session_threads = 2;
  serve::SessionServer server(config);
  server.wait(server.submit_fixed(problem, model));
}

TEST(PrometheusRender, ServeAndRuntimeInstrumentsExport) {
  obs::reset_metrics();
  trip_guard_once();
  run_one_fixed_job();

  const PromDoc doc = parse_prometheus(obs::render_prometheus());

  // The serving tier's SLO histogram renders as a summary with the three
  // fixed quantiles plus _sum/_count.
  ASSERT_EQ(doc.types.count("serve_queue_wait"), 1u);
  EXPECT_EQ(doc.types.at("serve_queue_wait"), "summary");
  for (const char* q : {"0.5", "0.95", "0.99"}) {
    EXPECT_EQ(doc.samples.count("serve_queue_wait{quantile=\"" +
                                std::string(q) + "\"}"),
              1u)
        << "missing quantile " << q;
  }
  ASSERT_EQ(doc.samples.count("serve_queue_wait_count"), 1u);
  EXPECT_GE(doc.samples.at("serve_queue_wait_count"), 1.0);
  EXPECT_EQ(doc.samples.count("serve_queue_wait_sum"), 1u);

  // Composed base{key="value"} registry names come back as real labels
  // merged with the quantile label.
  EXPECT_EQ(doc.samples.count(
                "serve_job_duration{mode=\"fixed\",quantile=\"0.5\"}"),
            1u);
  EXPECT_EQ(doc.samples.count("serve_job_duration_count{mode=\"fixed\"}"),
            1u);

  // The runtime guard's trip counter.
  ASSERT_EQ(doc.types.count("runtime_fallbacks"), 1u);
  EXPECT_EQ(doc.types.at("runtime_fallbacks"), "counter");
  ASSERT_EQ(doc.samples.count("runtime_fallbacks"), 1u);
  EXPECT_GE(doc.samples.at("runtime_fallbacks"), 1.0);
}

TEST(MetricsExporter, ScrapeOverRealSocket) {
  obs::histogram("serve.queue_wait").observe(0.0015);
  obs::counter("runtime.fallbacks");  // Register the family at least.

  obs::MetricsExporter exporter;
  ASSERT_TRUE(exporter.start(0));
  ASSERT_GT(exporter.port(), 0);

  const HttpResponse response = http_get(exporter.port(), "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers.find("text/plain; version=0.0.4"),
            std::string::npos)
      << response.headers;
  const PromDoc doc = parse_prometheus(response.body);
  EXPECT_EQ(doc.samples.count("serve_queue_wait{quantile=\"0.95\"}"), 1u);
  EXPECT_EQ(doc.samples.count("runtime_fallbacks"), 1u);

  exporter.stop();
  EXPECT_FALSE(exporter.running());
}

TEST(MetricsExporter, HealthzStatzAndErrorRoutes) {
  obs::MetricsExporter exporter;
  ASSERT_TRUE(exporter.start(0));
  const int port = exporter.port();

  const HttpResponse healthz = http_get(port, "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.body, "ok\n");

  const HttpResponse statz = http_get(port, "/statz");
  EXPECT_EQ(statz.status, 200);
  EXPECT_NE(statz.headers.find("application/json"), std::string::npos);
  ASSERT_FALSE(statz.body.empty());
  EXPECT_EQ(statz.body.front(), '{');
  EXPECT_EQ(statz.body.back(), '}');
  EXPECT_NE(statz.body.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(statz.body.find("\"uptime_s\""), std::string::npos);
  EXPECT_NE(statz.body.find("\"metrics\""), std::string::npos);

  EXPECT_EQ(http_get(port, "/nope").status, 404);
  EXPECT_EQ(http_request(port,
                         "POST /metrics HTTP/1.1\r\nHost: x\r\n"
                         "Content-Length: 0\r\n\r\n")
                .status,
            405);

  // Query strings route like their bare path.
  EXPECT_EQ(http_get(port, "/healthz?verbose=1").status, 200);
  exporter.stop();
}

TEST(MetricsExporter, StartStopLifecycle) {
  obs::MetricsExporter exporter;
  ASSERT_TRUE(exporter.start(0));
  const int port = exporter.port();
  EXPECT_GT(port, 0);
  // start() on a running exporter is a no-op keeping the bound port.
  EXPECT_TRUE(exporter.start(0));
  EXPECT_EQ(exporter.port(), port);

  // A second exporter coexists on its own ephemeral port.
  obs::MetricsExporter second;
  ASSERT_TRUE(second.start(0));
  EXPECT_NE(second.port(), port);
  EXPECT_EQ(http_get(second.port(), "/healthz").status, 200);
  second.stop();
  EXPECT_FALSE(second.running());
  EXPECT_EQ(second.port(), 0);

  EXPECT_EQ(http_get(port, "/healthz").status, 200);
  exporter.stop();
  exporter.stop();  // Idempotent.
  EXPECT_FALSE(exporter.running());
}

TEST(MetricsExporter, ConcurrentScrapeUnderLoad) {
  obs::MetricsExporter exporter;
  ASSERT_TRUE(exporter.start(0));
  const int port = exporter.port();

  // Register on the main thread so even the first scrape sees the
  // families; the writers then only do atomic updates.
  obs::Histogram& hist = obs::histogram("obstest.scrape_load");
  obs::Counter& hits = obs::counter("obstest.scrape_hits");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, &hist, &hits] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        hist.observe(1e-6 * static_cast<double>(i % 1024 + 1));
        hits.add();
        ++i;
      }
    });
  }
  for (int scrape = 0; scrape < 8; ++scrape) {
    const HttpResponse response = http_get(port, "/metrics");
    EXPECT_EQ(response.status, 200);
    const PromDoc doc = parse_prometheus(response.body);
    EXPECT_EQ(doc.samples.count("obstest_scrape_load{quantile=\"0.99\"}"),
              1u);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) {
    w.join();
  }
  exporter.stop();
}

}  // namespace
}  // namespace sfn
