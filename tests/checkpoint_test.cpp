// Scheduler checkpoint/restore (DESIGN.md §16): a SessionStepper
// suspended mid-flight through the persistence layer and resumed in a
// fresh stepper must finish with results bit-identical to the
// uninterrupted run — density, switch decisions, per-step model trace and
// fallback/quarantine bookkeeping. Wall-clock fields are the only
// excluded state (they restart from the resume).

#include "core/persistence.hpp"
#include "core/session.hpp"
#include "core/stepper.hpp"
#include "runtime/controller.hpp"
#include "serve_test_support.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>

namespace sfn {
namespace {

void expect_bit_identical(const fluid::GridF& expected,
                          const fluid::GridF& actual,
                          const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (std::size_t k = 0; k < expected.size(); ++k) {
    const float a = expected[k];
    const float b = actual[k];
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(float)), 0)
        << label << ": cell " << k << " differs: " << a << " vs " << b;
  }
}

void expect_same_run(const core::SessionResult& expected,
                     const core::SessionResult& actual,
                     const std::string& label) {
  expect_bit_identical(expected.final_density, actual.final_density, label);
  EXPECT_EQ(expected.model_per_step, actual.model_per_step) << label;
  EXPECT_EQ(expected.restarted_with_pcg, actual.restarted_with_pcg) << label;
  EXPECT_EQ(expected.fallback_steps, actual.fallback_steps) << label;
  EXPECT_EQ(expected.quarantined_models, actual.quarantined_models) << label;
  ASSERT_EQ(expected.events.size(), actual.events.size()) << label;
  for (std::size_t i = 0; i < expected.events.size(); ++i) {
    // Everything but seconds_offset (wall clock, reset by the resume).
    EXPECT_EQ(expected.events[i].step, actual.events[i].step) << label;
    EXPECT_EQ(expected.events[i].decision, actual.events[i].decision)
        << label;
    EXPECT_EQ(expected.events[i].from_candidate,
              actual.events[i].from_candidate)
        << label;
    EXPECT_EQ(expected.events[i].to_candidate, actual.events[i].to_candidate)
        << label;
    EXPECT_EQ(expected.events[i].predicted_quality,
              actual.events[i].predicted_quality)
        << label;
    EXPECT_EQ(expected.events[i].cum_div_norm, actual.events[i].cum_div_norm)
        << label;
  }
}

core::SessionResult run_to_end(core::SessionStepper* stepper) {
  while (stepper->step() == core::SessionStepper::Status::kRunning) {
  }
  stepper->rethrow_error();
  return stepper->take_result();
}

std::filesystem::path temp_checkpoint(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(Checkpoint, AdaptiveSuspendRestoreIsBitIdentical) {
  const auto artifacts = test::make_test_artifacts();
  const auto problem = test::make_test_problem(7000, 16, 20);

  core::SessionStepper reference(problem, artifacts);
  const auto uninterrupted = run_to_end(&reference);

  // Suspend after 7 steps through the persistence layer, restore into a
  // freshly constructed stepper, finish there.
  core::SessionStepper suspended(problem, artifacts);
  for (int i = 0; i < 7; ++i) {
    ASSERT_EQ(suspended.step(), core::SessionStepper::Status::kRunning);
  }
  const auto file = temp_checkpoint("sfn_ckpt_adaptive.bin");
  core::save_session_checkpoint(suspended, file);

  core::SessionStepper resumed(problem, artifacts);
  core::load_session_checkpoint(&resumed, file);
  EXPECT_EQ(resumed.steps_completed(), 7);
  const auto finished = run_to_end(&resumed);
  std::filesystem::remove(file);

  expect_same_run(uninterrupted, finished, "adaptive suspend/restore");
}

TEST(Checkpoint, FixedSuspendRestoreIsBitIdentical) {
  const auto artifacts = test::make_test_artifacts();
  const auto& model = artifacts.library[0];
  const auto problem = test::make_test_problem(7100, 16, 12);

  core::SessionStepper reference(problem, model);
  const auto uninterrupted = run_to_end(&reference);

  core::SessionStepper suspended(problem, model);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(suspended.step(), core::SessionStepper::Status::kRunning);
  }
  std::stringstream stream;  // In-memory round trip, no persistence layer.
  suspended.save_checkpoint(stream);
  core::SessionStepper resumed(problem, model);
  resumed.restore_checkpoint(stream);
  const auto finished = run_to_end(&resumed);

  expect_same_run(uninterrupted, finished, "fixed suspend/restore");
}

TEST(Checkpoint, RestartPhaseSurvivesSuspendRestore) {
  // An impossible quality requirement forces Algorithm 2's whole-run PCG
  // restart; checkpointing inside the replay phase must capture the redo
  // simulation and the restart bookkeeping.
  const auto artifacts = test::make_test_artifacts();
  // 20 steps: the first post-warmup check (step 5) escalates to the most
  // accurate candidate, the next one triggers the whole-run restart.
  const auto problem = test::make_test_problem(7200, 16, 20);
  core::SessionConfig config;
  config.quality_requirement = 1e-6;

  core::SessionStepper reference(problem, artifacts, config);
  int total_steps = 0;
  while (reference.step() == core::SessionStepper::Status::kRunning) {
    ++total_steps;
  }
  ++total_steps;  // The finishing call advanced a step too.
  reference.rethrow_error();
  const auto uninterrupted = reference.take_result();
  ASSERT_TRUE(uninterrupted.restarted_with_pcg)
      << "test premise: the tiny requirement must trigger a PCG restart";
  ASSERT_GT(total_steps, problem.steps)
      << "test premise: a restarted run replays extra steps";

  // Suspend 3 steps before the end — inside the restart replay.
  core::SessionStepper suspended(problem, artifacts, config);
  for (int i = 0; i < total_steps - 3; ++i) {
    ASSERT_EQ(suspended.step(), core::SessionStepper::Status::kRunning);
  }
  const auto file = temp_checkpoint("sfn_ckpt_restart.bin");
  core::save_session_checkpoint(suspended, file);
  core::SessionStepper resumed(problem, artifacts, config);
  core::load_session_checkpoint(&resumed, file);
  const auto finished = run_to_end(&resumed);
  std::filesystem::remove(file);

  expect_same_run(uninterrupted, finished, "restart-phase suspend/restore");
}

TEST(Checkpoint, MovingObstacleSuspendRestoreIsBitIdentical) {
  // Mid-motion suspend: the checkpoint stores no flag grid — flags are a
  // pure function of (scene, steps_completed) — so the restore must
  // re-rasterise the obstacle at the suspended pose without perturbing
  // the saved density (restore never clears newly covered cells; the
  // next step's idempotent refresh at the same time does).
  const auto artifacts = test::make_test_artifacts();
  const auto problem = workload::make_scene(
      workload::SceneFamily::kMovingObstacle, 7700, {16, 20});

  core::SessionStepper reference(problem, artifacts);
  const auto uninterrupted = run_to_end(&reference);

  for (const int at : {3, 8, 13}) {
    core::SessionStepper suspended(problem, artifacts);
    for (int i = 0; i < at; ++i) {
      ASSERT_EQ(suspended.step(), core::SessionStepper::Status::kRunning);
    }
    const auto file = temp_checkpoint("sfn_ckpt_moving.bin");
    core::save_session_checkpoint(suspended, file);
    core::SessionStepper resumed(problem, artifacts);
    core::load_session_checkpoint(&resumed, file);
    EXPECT_EQ(resumed.steps_completed(), at);
    const auto finished = run_to_end(&resumed);
    std::filesystem::remove(file);
    expect_same_run(uninterrupted, finished,
                    "moving obstacle suspended at step " +
                        std::to_string(at));
  }
}

TEST(Checkpoint, RestoreRejectsMismatchedProblem) {
  const auto artifacts = test::make_test_artifacts();
  core::SessionStepper source(test::make_test_problem(7300, 16, 12),
                              artifacts);
  ASSERT_EQ(source.step(), core::SessionStepper::Status::kRunning);
  std::stringstream stream;
  source.save_checkpoint(stream);

  // Different seed — different problem identity — must fail loudly
  // before any state is committed.
  core::SessionStepper other(test::make_test_problem(7301, 16, 12),
                             artifacts);
  EXPECT_THROW(other.restore_checkpoint(stream), std::invalid_argument);

  // A fixed stepper cannot consume an adaptive checkpoint either.
  stream.clear();
  stream.seekg(0);
  core::SessionStepper fixed(test::make_test_problem(7300, 16, 12),
                             artifacts.library[0]);
  EXPECT_THROW(fixed.restore_checkpoint(stream), std::invalid_argument);
}

TEST(Checkpoint, RestoreRejectsTruncatedStream) {
  const auto artifacts = test::make_test_artifacts();
  core::SessionStepper source(test::make_test_problem(7400, 16, 12),
                              artifacts);
  ASSERT_EQ(source.step(), core::SessionStepper::Status::kRunning);
  std::stringstream stream;
  source.save_checkpoint(stream);
  const std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  core::SessionStepper target(test::make_test_problem(7400, 16, 12),
                              artifacts);
  EXPECT_THROW(target.restore_checkpoint(truncated), std::runtime_error);
  // The failed restore left the stepper usable: it still finishes.
  EXPECT_GT(run_to_end(&target).final_density.size(), 0u);
}

TEST(Checkpoint, ControllerCheckpointRoundTripsThroughStepper) {
  // The controller's resumable state (current candidate, cooldown,
  // predictor window, quarantine/trip ledgers, event log) is exercised by
  // checkpointing right after a switch decision: the resumed run must
  // reproduce the remaining decisions exactly.
  const auto artifacts = test::make_test_artifacts();
  const auto problem = test::make_test_problem(7500, 16, 24);

  core::SessionStepper reference(problem, artifacts);
  const auto uninterrupted = run_to_end(&reference);

  for (const int at : {1, 11, 23}) {
    core::SessionStepper suspended(problem, artifacts);
    for (int i = 0; i < at; ++i) {
      ASSERT_EQ(suspended.step(), core::SessionStepper::Status::kRunning);
    }
    std::stringstream stream;
    suspended.save_checkpoint(stream);
    core::SessionStepper resumed(problem, artifacts);
    resumed.restore_checkpoint(stream);
    const auto finished = run_to_end(&resumed);
    expect_same_run(uninterrupted, finished,
                    "controller round trip at step " + std::to_string(at));
  }
}

TEST(Checkpoint, SaveAfterCompletionThrows) {
  const auto artifacts = test::make_test_artifacts();
  core::SessionStepper stepper(test::make_test_problem(7600, 16, 4),
                               artifacts);
  while (stepper.step() == core::SessionStepper::Status::kRunning) {
  }
  std::stringstream stream;
  EXPECT_THROW(stepper.save_checkpoint(stream), std::logic_error);
}

}  // namespace
}  // namespace sfn
