# Negative-compile runner for one thread-safety fixture (ctest case).
#
# Invoked in script mode with:
#   -DCOMPILER=<path to C++ compiler>  -DCOMPILER_ID=<CMAKE_CXX_COMPILER_ID>
#   -DSOURCE=<fixture .cpp>            -DINCLUDE_DIR=<repo src/>
#
# Semantics (CMake's try_compile cannot inspect diagnostics, so this
# drives the compiler directly with -fsyntax-only — same effect, plus the
# ability to assert WHICH diagnostic fired):
#   * fixture contains `// expect-clean`  -> must compile with zero
#     thread-safety warnings (positive control: proves the harness's
#     flags/include paths are live, so the negative cases can't pass
#     vacuously);
#   * fixture contains `// expect: <re>`  -> compilation must FAIL and
#     stderr must match <re> AND mention a -Wthread-safety group, proving
#     the annotation class under test actually fires.
#
# On a non-Clang compiler the analysis does not exist; print the skip
# token matched by the test's SKIP_REGULAR_EXPRESSION property.

if(NOT COMPILER_ID MATCHES "Clang")
  message(STATUS "SFN_TS_SKIP: thread-safety analysis needs Clang "
                 "(compiler is ${COMPILER_ID})")
  return()
endif()

file(READ "${SOURCE}" source_text)

string(REGEX MATCH "// expect-clean" expect_clean "${source_text}")
string(REGEX MATCH "// expect: ([^\n]*)" _ "${source_text}")
set(expect_re "${CMAKE_MATCH_1}")

if(NOT expect_clean AND expect_re STREQUAL "")
  message(FATAL_ERROR "fixture ${SOURCE} declares neither "
                      "'// expect: <regex>' nor '// expect-clean'")
endif()

execute_process(
  COMMAND "${COMPILER}" -fsyntax-only -std=c++20
          -Wthread-safety -Wthread-safety-beta
          -Werror=thread-safety -Werror=thread-safety-beta
          -I "${INCLUDE_DIR}" "${SOURCE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(expect_clean)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "positive control failed to compile:\n${err}")
  endif()
  message(STATUS "ok: positive control compiled clean")
  return()
endif()

if(rc EQUAL 0)
  message(FATAL_ERROR
          "fixture compiled successfully — the thread-safety analysis did "
          "not fire for this annotation class. An analysis that cannot "
          "fail is not an analysis; check the flags and the fixture.")
endif()
if(NOT err MATCHES "thread-safety")
  message(FATAL_ERROR
          "fixture failed to compile, but not with a -Wthread-safety "
          "diagnostic:\n${err}")
endif()
if(NOT err MATCHES "${expect_re}")
  message(FATAL_ERROR
          "expected diagnostic matching '${expect_re}', got:\n${err}")
endif()
message(STATUS "ok: failed to compile with the expected diagnostic")
