// expect: reading variable 'value_' requires holding mutex 'mutex_'
//
// Annotation class under test: SFN_GUARDED_BY (read side). Reading a
// guarded member without holding its mutex must be a compile error.

#include "util/annotations.hpp"

namespace {

class Counter {
 public:
  int value() { return value_; }  // BAD: no lock held.

 private:
  sfn::util::Mutex mutex_;
  int value_ SFN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.value();
}
