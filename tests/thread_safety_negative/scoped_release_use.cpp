// expect: requires holding mutex 'mutex_'
//
// Annotation class under test: SFN_SCOPED_CAPABILITY release tracking on
// ReleasableMutexLock. After release(), the scope no longer holds the
// capability, so touching guarded state must be a compile error even
// though the RAII object is still alive.

#include "util/annotations.hpp"

namespace {

class Counter {
 public:
  void add(int delta) SFN_EXCLUDES(mutex_) {
    sfn::util::ReleasableMutexLock lock(mutex_);
    value_ += delta;
    lock.release();
    value_ += delta;  // BAD: capability already released.
  }

 private:
  sfn::util::Mutex mutex_;
  int value_ SFN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return 0;
}
