// expect: calling function 'add_locked' requires holding mutex 'mutex_'
//
// Annotation class under test: SFN_REQUIRES. Calling a function whose
// contract demands the mutex, without holding it, must be a compile
// error.

#include "util/annotations.hpp"

namespace {

class Counter {
 public:
  void add_locked(int delta) SFN_REQUIRES(mutex_) { value_ += delta; }

  void add(int delta) {
    add_locked(delta);  // BAD: precondition mutex_ not held.
  }

 private:
  sfn::util::Mutex mutex_;
  int value_ SFN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return 0;
}
