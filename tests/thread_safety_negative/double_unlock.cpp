// expect: releasing mutex 'mutex_' that was not held
//
// Annotation class under test: SFN_RELEASE. Unlocking a mutex the
// calling context does not hold (double unlock — undefined behaviour on
// std::mutex) must be a compile error.

#include "util/annotations.hpp"

namespace {

class Counter {
 public:
  void add(int delta) {
    mutex_.lock();
    value_ += delta;
    mutex_.unlock();
    mutex_.unlock();  // BAD: already released.
  }

 private:
  sfn::util::Mutex mutex_;
  int value_ SFN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return 0;
}
