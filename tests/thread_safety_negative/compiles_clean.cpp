// expect-clean
//
// Positive control: correct use of every annotation class must compile
// with zero -Wthread-safety diagnostics. If this fixture ever fails, the
// harness flags/include paths are broken and the negative fixtures below
// would be passing vacuously.

#include "util/annotations.hpp"

namespace {

class Counter {
 public:
  void add(int delta) SFN_EXCLUDES(mutex_) {
    const sfn::util::MutexLock lock(mutex_);
    value_ += delta;
  }

  int value() SFN_EXCLUDES(mutex_) {
    const sfn::util::MutexLock lock(mutex_);
    return value_;
  }

  void add_locked(int delta) SFN_REQUIRES(mutex_) { value_ += delta; }

  void add_twice(int delta) SFN_EXCLUDES(mutex_) {
    const sfn::util::MutexLock lock(mutex_);
    add_locked(delta);
    add_locked(delta);
  }

  void wait_positive() SFN_EXCLUDES(mutex_) {
    const sfn::util::MutexLock lock(mutex_);
    while (value_ <= 0) {
      cv_.wait(mutex_);
    }
  }

  void release_early() SFN_EXCLUDES(mutex_) {
    sfn::util::ReleasableMutexLock lock(mutex_);
    value_ += 1;
    lock.release();
    // Unguarded work after the release is fine.
  }

 private:
  sfn::util::Mutex mutex_;
  sfn::util::CondVar cv_;
  int value_ SFN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  c.add_twice(2);
  c.release_early();
  c.wait_positive();
  return c.value() == 6 ? 0 : 1;
}
