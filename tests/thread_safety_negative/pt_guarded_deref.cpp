// expect: reading the value pointed to by 'value_' requires holding mutex 'mutex_'
//
// Annotation class under test: SFN_PT_GUARDED_BY. Dereferencing a
// pointer whose pointee is guarded, without holding the mutex, must be a
// compile error (reading the pointer itself stays legal).

#include "util/annotations.hpp"

namespace {

class Counter {
 public:
  Counter() : value_(new int(0)) {}
  ~Counter() { delete value_; }
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  int value() { return *value_; }  // BAD: pointee read without the lock.

 private:
  sfn::util::Mutex mutex_;
  int* value_ SFN_PT_GUARDED_BY(mutex_);
};

}  // namespace

int main() {
  Counter c;
  return c.value();
}
