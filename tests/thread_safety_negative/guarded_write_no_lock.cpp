// expect: writing variable 'value_' requires holding mutex 'mutex_' exclusively
//
// Annotation class under test: SFN_GUARDED_BY (write side). Writing a
// guarded member without holding its mutex must be a compile error.

#include "util/annotations.hpp"

namespace {

class Counter {
 public:
  void add(int delta) { value_ += delta; }  // BAD: no lock held.

 private:
  sfn::util::Mutex mutex_;
  int value_ SFN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return 0;
}
