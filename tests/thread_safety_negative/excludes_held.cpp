// expect: cannot call function 'add' while mutex 'mutex_' is held
//
// Annotation class under test: SFN_EXCLUDES. Calling a self-locking
// function while already holding its mutex (the classic re-entrant
// deadlock) must be a compile error.

#include "util/annotations.hpp"

namespace {

class Counter {
 public:
  void add(int delta) SFN_EXCLUDES(mutex_) {
    const sfn::util::MutexLock lock(mutex_);
    value_ += delta;
  }

  void add_both(int delta) SFN_EXCLUDES(mutex_) {
    const sfn::util::MutexLock lock(mutex_);
    add(delta);  // BAD: would self-deadlock on the non-recursive mutex.
  }

 private:
  sfn::util::Mutex mutex_;
  int value_ SFN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add_both(1);
  return 0;
}
