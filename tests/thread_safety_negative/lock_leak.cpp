// expect: mutex 'mutex_' is still held at the end of function
//
// Annotation class under test: SFN_ACQUIRE without a matching
// SFN_RELEASE on every path. A function that returns with the mutex
// held (and does not advertise that in its signature) must be a compile
// error.

#include "util/annotations.hpp"

namespace {

class Counter {
 public:
  void add(int delta) {
    mutex_.lock();
    value_ += delta;
    if (delta == 0) {
      return;  // BAD: leaks the lock on this path.
    }
    mutex_.unlock();
  }

 private:
  sfn::util::Mutex mutex_;
  int value_ SFN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(0);
  return 0;
}
