// Property sweeps over the neural-network stack: every architecture the
// generator can emit must build, run, serialize and train consistently.

#include "core/neural_projection.hpp"
#include "modelgen/generator.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace sfn {
namespace {

std::vector<modelgen::GeneratedSpec> small_family(std::uint64_t seed) {
  modelgen::GenerationParams params;
  params.shallow_models = 2;
  params.narrow_variants_per_model = 2;
  params.dropout_models = 2;
  util::Rng rng(seed);
  return modelgen::generate_family(modelgen::tompson_spec(), params, rng);
}

class FamilyProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FamilyProperties, EveryGeneratedModelRunsAtMultipleResolutions) {
  for (const auto& member : small_family(GetParam())) {
    util::Rng rng(1);
    auto net = modelgen::build_network(member.spec, rng);
    for (const int n : {16, 24, 32}) {
      const nn::Tensor input(nn::Shape{2, n, n}, 0.1f);
      const nn::Tensor out = net.forward(input, false);
      ASSERT_EQ(out.shape(), (nn::Shape{1, n, n})) << member.spec.describe();
      for (std::size_t k = 0; k < out.numel(); ++k) {
        ASSERT_TRUE(std::isfinite(out[k])) << member.spec.describe();
      }
    }
  }
}

TEST_P(FamilyProperties, SerializationPreservesEveryModel) {
  for (const auto& member : small_family(GetParam())) {
    util::Rng rng(2);
    auto net = modelgen::build_network(member.spec, rng);
    std::stringstream buffer;
    net.save(buffer);
    auto loaded = nn::Network::load(buffer);
    const nn::Tensor input(nn::Shape{2, 16, 16}, 0.2f);
    const auto a = net.forward(input, false);
    const auto b = loaded.forward(input, false);
    for (std::size_t k = 0; k < a.numel(); ++k) {
      ASSERT_FLOAT_EQ(a[k], b[k]) << member.spec.describe();
    }
  }
}

TEST_P(FamilyProperties, FlopsOrderingMatchesArchitectureSize) {
  // A narrowed model never costs more than its parent; a shallowed model
  // never costs more than the base.
  const auto base_spec = modelgen::tompson_spec();
  util::Rng rng(3);
  auto base = modelgen::build_network(base_spec, rng);
  const nn::Shape in{2, 32, 32};
  for (const auto& member : small_family(GetParam())) {
    auto net = modelgen::build_network(member.spec, rng);
    if (member.origin == "shallow" || member.origin == "narrow") {
      ASSERT_LE(net.flops(in), base.flops(in)) << member.spec.describe();
    }
  }
}

TEST_P(FamilyProperties, TrainingStepChangesParameters) {
  for (const auto& member : small_family(GetParam())) {
    util::Rng rng(4);
    auto net = modelgen::build_network(member.spec, rng);
    const auto before = [&] {
      double acc = 0.0;
      for (auto& view : net.params()) {
        for (float v : view.values) acc += std::abs(v);
      }
      return acc;
    }();
    const nn::Tensor input(nn::Shape{2, 16, 16}, 0.3f);
    const nn::Tensor target(nn::Shape{1, 16, 16}, 0.1f);
    nn::Adam opt(1e-2);
    net.zero_grads();
    const auto pred = net.forward(input, true);
    net.backward(nn::mse_loss(pred, target).grad);
    opt.step(net, 1.0);
    double after = 0.0;
    for (auto& view : net.params()) {
      for (float v : view.values) after += std::abs(v);
    }
    ASSERT_NE(before, after) << member.spec.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FamilyProperties,
                         ::testing::Values(101ull, 202ull, 303ull));

TEST(NeuralProjectionProperty, ScaleEquivarianceBySolveLinearity) {
  // p(alpha * b) == alpha * p(b): the normalised encoding makes the
  // surrogate exactly scale-equivariant, mirroring the linearity of the
  // underlying system.
  fluid::FlagGrid flags(16, 16, fluid::CellType::kFluid);
  flags.set_smoke_box_boundary();
  util::Rng rng(5);
  fluid::GridF rhs(16, 16, 0.0f);
  for (int j = 0; j < 16; ++j) {
    for (int i = 0; i < 16; ++i) {
      if (flags.is_fluid(i, j)) {
        rhs(i, j) = static_cast<float>(rng.uniform(-0.1, 0.1));
      }
    }
  }
  auto net = modelgen::build_network(modelgen::tompson_spec(4), rng);
  core::NeuralProjection proj(std::move(net));

  fluid::GridF p1(16, 16, 0.0f);
  proj.solve(flags, rhs, &p1);

  fluid::GridF rhs4 = rhs;
  for (std::size_t k = 0; k < rhs4.size(); ++k) {
    rhs4[k] *= 4.0f;
  }
  fluid::GridF p4(16, 16, 0.0f);
  proj.solve(flags, rhs4, &p4);

  for (int j = 0; j < 16; ++j) {
    for (int i = 0; i < 16; ++i) {
      if (flags.is_fluid(i, j)) {
        ASSERT_NEAR(p4(i, j), 4.0f * p1(i, j),
                    1e-3f * std::max(1.0f, std::abs(4.0f * p1(i, j))));
      }
    }
  }
}

TEST(NeuralProjectionProperty, NonFiniteInputsAreSanitised) {
  fluid::FlagGrid flags(8, 8, fluid::CellType::kFluid);
  flags.set_smoke_box_boundary();
  fluid::GridF rhs(8, 8, 0.0f);
  rhs(3, 3) = std::numeric_limits<float>::quiet_NaN();
  rhs(4, 4) = std::numeric_limits<float>::infinity();
  util::Rng rng(6);
  core::NeuralProjection proj(
      modelgen::build_network(modelgen::tompson_spec(4), rng));
  fluid::GridF p(8, 8, 0.0f);
  proj.solve(flags, rhs, &p);
  for (std::size_t k = 0; k < p.size(); ++k) {
    ASSERT_TRUE(std::isfinite(p[k]));
  }
}

}  // namespace
}  // namespace sfn
