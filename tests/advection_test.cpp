#include "fluid/advection.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace sfn {
namespace {

using fluid::AdvectionScheme;
using fluid::CellType;
using fluid::FlagGrid;
using fluid::GridF;
using fluid::MacGrid2;

FlagGrid open_box(int n) {
  FlagGrid flags(n, n, CellType::kFluid);
  flags.set_smoke_box_boundary();
  return flags;
}

class AdvectionSchemes : public ::testing::TestWithParam<AdvectionScheme> {};

TEST_P(AdvectionSchemes, ConstantFieldIsInvariant) {
  const int n = 16;
  const FlagGrid flags = open_box(n);
  MacGrid2 vel(n, n);
  vel.fill(0.4f, -0.2f);
  GridF src(n, n, 3.0f);
  GridF dst(n, n, 0.0f);
  fluid::advect_scalar(vel, flags, 0.05, src, &dst, GetParam());
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(dst(i, j), 3.0f, 1e-5f);
    }
  }
}

TEST_P(AdvectionSchemes, ZeroVelocityIsIdentityInFluid) {
  const int n = 12;
  const FlagGrid flags = open_box(n);
  const MacGrid2 vel(n, n);
  GridF src(n, n, 0.0f);
  util::Rng rng(4);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      src(i, j) = static_cast<float>(rng.uniform());
    }
  }
  GridF dst(n, n, 0.0f);
  fluid::advect_scalar(vel, flags, 0.1, src, &dst, GetParam());
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(dst(i, j), src(i, j), 1e-6f) << i << "," << j;
    }
  }
}

TEST_P(AdvectionSchemes, TransportsBlobDownstream) {
  const int n = 32;
  const FlagGrid flags = open_box(n);
  MacGrid2 vel(n, n);
  vel.fill(0.5f, 0.0f);  // Rightward, world units.
  GridF src(n, n, 0.0f);
  src(8, 16) = 1.0f;
  GridF dst(n, n, 0.0f);
  // dt chosen so the blob moves exactly 4 cells: dx = 1/32, so
  // displacement = 0.5 * dt * 32 cells = 4 => dt = 0.25.
  fluid::advect_scalar(vel, flags, 0.25, src, &dst, GetParam());
  EXPECT_GT(dst(12, 16), 0.5f);
  EXPECT_LT(dst(8, 16), 0.5f);
}

TEST_P(AdvectionSchemes, MaintainsBoundsOnRandomField) {
  // Semi-Lagrangian and clamped MacCormack are both monotonicity-safe:
  // no new extrema beyond the source range.
  const int n = 24;
  const FlagGrid flags = open_box(n);
  MacGrid2 vel(n, n);
  util::Rng rng(9);
  for (std::size_t k = 0; k < vel.u().size(); ++k) {
    vel.u()[k] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t k = 0; k < vel.v().size(); ++k) {
    vel.v()[k] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  GridF src(n, n, 0.0f);
  for (std::size_t k = 0; k < src.size(); ++k) {
    src[k] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  GridF dst(n, n, 0.0f);
  fluid::advect_scalar(vel, flags, 0.05, src, &dst, GetParam());
  for (std::size_t k = 0; k < dst.size(); ++k) {
    EXPECT_GE(dst[k], 0.0f - 1e-6f);
    EXPECT_LE(dst[k], 1.0f + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, AdvectionSchemes,
                         ::testing::Values(AdvectionScheme::kSemiLagrangian,
                                           AdvectionScheme::kMacCormack));

TEST(Advection, MacCormackSharperThanSemiLagrangian) {
  // Advect a smooth bump for several steps; MacCormack's second-order
  // correction must preserve more of the peak.
  const int n = 48;
  const FlagGrid flags = open_box(n);
  MacGrid2 vel(n, n);
  vel.fill(0.4f, 0.0f);

  auto make_bump = [&] {
    GridF g(n, n, 0.0f);
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        const double dx = (i - 12) / 3.0;
        const double dy = (j - 24) / 3.0;
        g(i, j) = static_cast<float>(std::exp(-(dx * dx + dy * dy)));
      }
    }
    return g;
  };

  GridF sl = make_bump();
  GridF mc = make_bump();
  GridF tmp(n, n, 0.0f);
  for (int step = 0; step < 10; ++step) {
    fluid::advect_scalar(vel, flags, 0.02, sl, &tmp,
                         AdvectionScheme::kSemiLagrangian);
    std::swap(sl, tmp);
    fluid::advect_scalar(vel, flags, 0.02, mc, &tmp,
                         AdvectionScheme::kMacCormack);
    std::swap(mc, tmp);
  }
  EXPECT_GT(mc.max_abs(), sl.max_abs());
}

TEST(Advection, VelocitySelfAdvectionKeepsSolidFacesPinned) {
  const int n = 16;
  FlagGrid flags = open_box(n);
  flags.set(8, 8, CellType::kSolid);
  MacGrid2 vel(n, n);
  vel.fill(0.5f, 0.3f);
  vel.enforce_solid_boundaries(flags);
  MacGrid2 out(n, n);
  fluid::advect_velocity(vel, flags, 0.05, &out);
  EXPECT_FLOAT_EQ(out.u()(8, 8), 0.0f);
  EXPECT_FLOAT_EQ(out.u()(9, 8), 0.0f);
  EXPECT_FLOAT_EQ(out.v()(8, 8), 0.0f);
  EXPECT_FLOAT_EQ(out.v()(8, 9), 0.0f);
}

TEST(Advection, NanVelocityDoesNotInvokeUndefinedBehaviour) {
  // Regression: the semi-Lagrangian/MacCormack backtrace used to cast the
  // backtraced coordinate straight to int. With a NaN velocity (diverged
  // surrogate) that cast is undefined behaviour; clamp_coord/floor_cell now
  // pin NaN to the grid's low edge before the cast. Under UBSan this test
  // is the gate; in default builds it asserts the output stays finite, and
  // with -DSFN_CHECK_NUMERICS=ON the entry check rejects the field instead.
  const int n = 16;
  const FlagGrid flags = open_box(n);
  const float nan_f = std::numeric_limits<float>::quiet_NaN();
  GridF src(n, n, 0.5f);

  for (const auto scheme : {AdvectionScheme::kSemiLagrangian,
                            AdvectionScheme::kMacCormack}) {
    SCOPED_TRACE(static_cast<int>(scheme));
    MacGrid2 vel(n, n);
    vel.fill(0.25f, -0.25f);
    vel.u()(7, 7) = nan_f;  // One poisoned face is enough to hit the cast.
    vel.v()(3, 9) = -std::numeric_limits<float>::infinity();
    GridF dst(n, n, 0.0f);
#ifdef SFN_CHECK_NUMERICS
    EXPECT_THROW(fluid::advect_scalar(vel, flags, 0.1, src, &dst, scheme),
                 util::CheckError);
#else
    fluid::advect_scalar(vel, flags, 0.1, src, &dst, scheme);
    for (std::size_t k = 0; k < dst.size(); ++k) {
      EXPECT_TRUE(std::isfinite(dst[k])) << "cell " << k;
    }
#endif
  }
}

TEST(Advection, NanVelocitySelfAdvectionIsDefined) {
  const int n = 12;
  const FlagGrid flags = open_box(n);
  MacGrid2 vel(n, n);
  vel.fill(0.1f, 0.1f);
  vel.u()(5, 5) = std::numeric_limits<float>::quiet_NaN();
  MacGrid2 out(n, n);
#ifdef SFN_CHECK_NUMERICS
  EXPECT_THROW(fluid::advect_velocity(vel, flags, 0.05, &out),
               util::CheckError);
#else
  // Must complete without UB (sanitizer builds verify); NaN may propagate
  // to cells whose backtrace sampled the poisoned face, but every lookup
  // stays in bounds.
  fluid::advect_velocity(vel, flags, 0.05, &out);
#endif
}

TEST(Advection, ResolutionIndependentDisplacement) {
  // The same world-space problem at two resolutions moves the blob to the
  // same world position.
  for (const int n : {16, 32}) {
    const FlagGrid flags = open_box(n);
    MacGrid2 vel(n, n);
    vel.fill(0.5f, 0.0f);
    GridF src(n, n, 0.0f);
    // Blob at world x = 0.25.
    src(n / 4, n / 2) = 1.0f;
    GridF dst(n, n, 0.0f);
    fluid::advect_scalar(vel, flags, 0.25, src, &dst);
    // Expect peak near world x = 0.375 -> cell 3n/8.
    int peak_i = 0;
    float peak = -1.0f;
    for (int i = 0; i < n; ++i) {
      if (dst(i, n / 2) > peak) {
        peak = dst(i, n / 2);
        peak_i = i;
      }
    }
    EXPECT_NEAR(static_cast<double>(peak_i) / n, 0.375, 1.5 / n) << "n=" << n;
  }
}

}  // namespace
}  // namespace sfn
