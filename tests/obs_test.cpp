// Tests for the runtime telemetry subsystem (src/obs): scoped tracing,
// the metrics registry, chrome-trace export/parse round-trips, and the
// guarantees the instrumentation relies on — a zero-allocation disabled
// path and thread-safe counters.

#include "core/session.hpp"
#include "modelgen/arch_spec.hpp"
#include "nn/conv2d.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/problems.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

// ---------------------------------------------------------------------------
// Global allocation counter (same idiom as conv_algo_test): only counts
// while armed, so gtest bookkeeping between tests does not pollute the
// disabled-path assertions.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// ---------------------------------------------------------------------------

namespace {

using namespace sfn;

/// Every test leaves the global trace state the way it found it (off,
/// empty buffers) so tests cannot order-couple through the singletons.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_mode(obs::TraceMode::kOff);
    obs::reset_thread_buffers();
    obs::set_metrics_enabled(true);
  }
  void TearDown() override {
    obs::set_trace_mode(obs::TraceMode::kOff);
    obs::reset_thread_buffers();
    obs::set_metrics_enabled(true);
  }
};

void spin_for(double seconds) {
  const auto until = obs::detail::now_seconds() + seconds;
  while (obs::detail::now_seconds() < until) {
  }
}

TEST_F(ObsTest, ScopesRecordEventsInFullMode) {
  obs::set_trace_mode(obs::TraceMode::kFull);
  {
    SFN_TRACE_SCOPE("obstest.outer");
    spin_for(1e-4);
    {
      SFN_TRACE_SCOPE("obstest.inner");
      spin_for(1e-4);
    }
  }
  const auto events = obs::snapshot_events();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot is ordered by begin time: outer opened first.
  EXPECT_STREQ(events[0].name, "obstest.outer");
  EXPECT_STREQ(events[1].name, "obstest.inner");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_GE(events[0].seconds(), events[1].seconds());
  // Inner nests inside outer on the timeline.
  EXPECT_GE(events[1].begin_s, events[0].begin_s);
  EXPECT_LE(events[1].end_s, events[0].end_s);
}

TEST_F(ObsTest, SummaryModeAggregatesWithoutEvents) {
  obs::set_trace_mode(obs::TraceMode::kSummary);
  for (int i = 0; i < 5; ++i) {
    SFN_TRACE_SCOPE("obstest.summary_scope");
    spin_for(1e-5);
  }
  EXPECT_TRUE(obs::snapshot_events().empty());
  const auto stats = obs::aggregate_scope_stats();
  const auto it = std::find_if(
      stats.begin(), stats.end(),
      [](const obs::ScopeStats& s) { return s.name == "obstest.summary_scope"; });
  ASSERT_NE(it, stats.end());
  EXPECT_EQ(it->count, 5u);
  EXPECT_GT(it->total_s, 0.0);
  EXPECT_LE(it->min_s, it->max_s);
  EXPECT_LE(it->max_s, it->total_s);
}

TEST_F(ObsTest, ChromeTraceRoundTripReconstructsPhaseTree) {
  obs::set_trace_mode(obs::TraceMode::kFull);
  {
    SFN_TRACE_SCOPE("obstest.root");
    spin_for(1e-4);
    {
      SFN_TRACE_SCOPE("obstest.child_a");
      spin_for(1e-4);
    }
    {
      SFN_TRACE_SCOPE_ID("obstest.child_b", 7);
      spin_for(1e-4);
    }
  }

  std::stringstream buf;
  obs::write_chrome_trace(buf);
  const auto parsed = obs::parse_chrome_trace(buf);
  ASSERT_EQ(parsed.size(), 3u);

  // Reconstruct the tree: a parsed event's parent is the deepest event
  // whose [ts, ts+dur] interval contains it on the same thread.
  auto find = [&](const std::string& name) {
    for (const auto& ev : parsed) {
      if (ev.name == name) return ev;
    }
    ADD_FAILURE() << "missing event " << name;
    return obs::ParsedEvent{};
  };
  const auto root = find("obstest.root");
  const auto child_a = find("obstest.child_a");
  const auto child_b = find("obstest.child_b");

  EXPECT_EQ(root.depth, 0);
  EXPECT_EQ(child_a.depth, 1);
  EXPECT_EQ(child_b.depth, 1);
  for (const auto& child : {child_a, child_b}) {
    EXPECT_EQ(child.tid, root.tid);
    EXPECT_GE(child.ts_us, root.ts_us);
    EXPECT_LE(child.ts_us + child.dur_us, root.ts_us + root.dur_us + 1.0);
  }
  // Siblings do not overlap.
  EXPECT_TRUE(child_a.ts_us + child_a.dur_us <= child_b.ts_us ||
              child_b.ts_us + child_b.dur_us <= child_a.ts_us);
  // The attribution id survives the round trip; plain scopes carry none.
  ASSERT_TRUE(child_b.id.has_value());
  EXPECT_EQ(*child_b.id, 7u);
  EXPECT_FALSE(child_a.id.has_value());
  EXPECT_FALSE(root.id.has_value());
}

TEST_F(ObsTest, ParserRejectsStructurallyBrokenInput) {
  std::stringstream buf("not a trace at all\n");
  EXPECT_THROW(obs::parse_chrome_trace(buf), std::runtime_error);
}

TEST_F(ObsTest, DisabledPathDoesNotAllocate) {
  obs::set_trace_mode(obs::TraceMode::kOff);
  // Warm up: first lookup of a metric name registers it (allocates once);
  // steady-state call sites hold cached references, mirrored here.
  obs::Counter& counter = obs::counter("obstest.disabled_counter");
  obs::Histogram& hist = obs::histogram("obstest.disabled_hist");
  {
    SFN_TRACE_SCOPE("obstest.disabled_scope");
  }

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 1000; ++i) {
    SFN_TRACE_SCOPE("obstest.disabled_scope");
    counter.add();
    hist.observe(1.5);
  }
  g_count_allocs.store(false);
  EXPECT_EQ(0u, g_alloc_count.load())
      << "SFN_TRACE=off instrumentation must stay off the heap";
  EXPECT_TRUE(obs::snapshot_events().empty());
}

TEST_F(ObsTest, EnabledScopesDoNotAllocateEither) {
  obs::set_trace_mode(obs::TraceMode::kFull);
  {
    SFN_TRACE_SCOPE("obstest.enabled_scope");  // Warm up thread buffer.
  }
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 100; ++i) {
    SFN_TRACE_SCOPE("obstest.enabled_scope");
  }
  g_count_allocs.store(false);
  EXPECT_EQ(0u, g_alloc_count.load())
      << "recording into preallocated ring buffers must not allocate";
}

TEST_F(ObsTest, CountersAreConsistentAcrossThreads) {
  obs::Counter& counter = obs::counter("obstest.mt_counter");
  obs::Histogram& hist = obs::histogram("obstest.mt_hist");
  counter.reset();
  hist.reset();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist, t] {
      // Every thread also traces, so the per-thread buffer registration
      // and aggregate updates run concurrently under TSan.
      for (int i = 0; i < kPerThread; ++i) {
        SFN_TRACE_SCOPE("obstest.mt_scope");
        counter.add();
        hist.observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kThreads));
  // Sum of t+1 over threads, kPerThread times each.
  const double expected_sum =
      kPerThread * (kThreads * (kThreads + 1)) / 2.0;
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
}

TEST_F(ObsTest, DisabledMetricsDropUpdates) {
  obs::Counter& counter = obs::counter("obstest.gated_counter");
  counter.reset();
  obs::set_metrics_enabled(false);
  counter.add(5);
  EXPECT_EQ(counter.value(), 0u);
  obs::set_metrics_enabled(true);
  counter.add(5);
  EXPECT_EQ(counter.value(), 5u);
}

TEST_F(ObsTest, HistogramQuantilesAreMonotone) {
  obs::Histogram& hist = obs::histogram("obstest.quantile_hist");
  hist.reset();
  for (int i = 1; i <= 1024; ++i) {
    hist.observe(static_cast<double>(i));
  }
  const double p50 = hist.approx_quantile(0.5);
  const double p90 = hist.approx_quantile(0.9);
  const double p99 = hist.approx_quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Bin edges are powers of two; the medians land within a factor of two.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p99, 2048.0);
}

TEST_F(ObsTest, MetricsTableListsRegisteredInstruments) {
  obs::counter("obstest.table_counter").add(3);
  obs::gauge("obstest.table_gauge").set(1.25);
  const auto table = obs::metrics_table();
  EXPECT_GE(table.rows(), 2u);
  const auto metrics = obs::all_metrics();
  EXPECT_TRUE(std::is_sorted(metrics.begin(), metrics.end(),
                             [](const obs::MetricValue& a,
                                const obs::MetricValue& b) {
                               return a.name < b.name;
                             }));
}

TEST_F(ObsTest, TraceCaptureReceivesEventsWithTracingOff) {
  obs::set_trace_mode(obs::TraceMode::kOff);
  obs::TraceCapture capture;
  {
    SFN_TRACE_SCOPE("obstest.captured");
    spin_for(1e-5);
  }
  // Captured on this thread even though the global mode is off...
  ASSERT_EQ(capture.events().size(), 1u);
  EXPECT_STREQ(capture.events()[0].name, "obstest.captured");
  EXPECT_GT(capture.events()[0].seconds(), 0.0);
  // ...and nothing reached the global buffers.
  EXPECT_TRUE(obs::snapshot_events().empty());
}

TEST_F(ObsTest, TraceCapturesNest) {
  obs::TraceCapture outer;
  {
    SFN_TRACE_SCOPE("obstest.outer_capture");
    {
      obs::TraceCapture inner;
      { SFN_TRACE_SCOPE("obstest.inner_capture"); }
      ASSERT_EQ(inner.events().size(), 1u);
      EXPECT_STREQ(inner.events()[0].name, "obstest.inner_capture");
    }
  }
  // The outer capture saw only the scope that closed while it was the
  // innermost capture.
  ASSERT_EQ(outer.events().size(), 1u);
  EXPECT_STREQ(outer.events()[0].name, "obstest.outer_capture");
}

TEST_F(ObsTest, FullBuffersDropNewestAndCount) {
  obs::set_trace_mode(obs::TraceMode::kFull);
  obs::set_trace_buffer_capacity(16);
  // A fresh thread picks up the reduced capacity (the capacity is fixed
  // at thread-buffer creation).
  std::thread worker([] {
    for (int i = 0; i < 64; ++i) {
      SFN_TRACE_SCOPE("obstest.drop_scope");
    }
  });
  worker.join();
  EXPECT_GE(obs::dropped_events(), 48u);
  const auto stats = obs::aggregate_scope_stats();
  const auto it = std::find_if(
      stats.begin(), stats.end(),
      [](const obs::ScopeStats& s) { return s.name == "obstest.drop_scope"; });
  ASSERT_NE(it, stats.end());
  // Aggregates keep counting even after the event buffer fills.
  EXPECT_EQ(it->count, 64u);
  obs::set_trace_buffer_capacity(16384);
}

TEST_F(ObsTest, RunFixedDerivesTimingFromTelemetryStream) {
  // Hand-built single-conv surrogate: accuracy is irrelevant, the test
  // checks that SessionResult timing is reconstructed from the trace.
  core::TrainedModel model;
  model.spec.name = "obs-test-conv";
  model.records.model_id = 42;
  auto conv = std::make_unique<nn::Conv2D>(2, 1, 3, /*residual=*/false);
  util::Rng rng(7);
  conv->init_weights(rng);
  model.net.add(std::move(conv));

  workload::ProblemSetParams params;
  params.grid = 48;
  params.steps = 12;
  const auto problems = workload::generate_problems(1, params, 4242);
  const auto result = core::run_fixed(problems[0], model);

  ASSERT_EQ(result.model_per_step.size(), 12u);
  for (const std::size_t id : result.model_per_step) {
    EXPECT_EQ(id, 42u);
  }
  ASSERT_EQ(result.seconds_per_model.size(), 1u);
  const double attributed = result.seconds_per_model.at(42);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(attributed, 0.0);
  // Steps happen inside the session scope, so attributed time is bounded
  // by the total and covers most of it (the remainder is sim setup).
  EXPECT_LE(attributed, result.seconds);
  EXPECT_GE(attributed, 0.5 * result.seconds);
}

TEST_F(ObsTest, ModelTimeTableMatchesSessionAttribution) {
  obs::TraceCapture capture;
  {
    obs::TraceScope session("session.fixed");
    {
      obs::TraceScope step("session.step", std::uint64_t{3});
      spin_for(1e-4);
    }
    {
      obs::TraceScope step("session.step", std::uint64_t{3});
      spin_for(1e-4);
    }
    {
      obs::TraceScope step("session.step", std::uint64_t{9});
      spin_for(1e-4);
    }
  }
  const auto table = obs::model_time_table(capture.events());
  // Two models -> two rows (Model | Steps | Seconds | Share).
  EXPECT_EQ(table.rows(), 2u);
}

TEST_F(ObsTest, PhaseSummaryTableCoversRecordedScopes) {
  obs::set_trace_mode(obs::TraceMode::kSummary);
  {
    SFN_TRACE_SCOPE("obstest.phase_root");
    spin_for(1e-4);
    SFN_TRACE_SCOPE("obstest.phase_leaf");
    spin_for(1e-4);
  }
  const auto table = obs::phase_summary_table();
  EXPECT_GE(table.rows(), 2u);
}

}  // namespace
