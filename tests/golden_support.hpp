#pragma once

// Golden-trajectory infrastructure shared by golden_test and
// persistence_test: record per-step DivNorm / CumDivNorm and the final
// quality loss of a fixed-surrogate rollout, persist it as a small JSON
// baseline under tests/golden/, and diff a fresh run against the stored
// file with per-metric relative tolerances. Regeneration goes through
// the same record/save helpers (`golden_test --update-golden`), so a
// baseline can never drift from the measurement code that checks it.

#include "core/session.hpp"
#include "fluid/operators.hpp"
#include "fluid/pcg.hpp"
#include "util/table.hpp"
#include "workload/problems.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace sfn::test {

/// One recorded baseline: the telemetry stream the runtime's switching
/// machinery consumes (DivNorm per step, its running sum) plus the final
/// quality loss against the exact PCG rollout of the same problem.
struct GoldenTrajectory {
  std::string name;
  std::uint64_t problem_seed = 0;
  int grid = 0;
  int steps = 0;
  std::vector<double> div_norm;
  std::vector<double> cum_div_norm;
  double final_qloss = 0.0;
};

/// Per-metric relative tolerances. CumDivNorm is the controller's input,
/// so its bound is the tight one (acceptance: no wider than 1e-5
/// relative); Qloss compares two chaotic rollouts and gets slightly more
/// slack. An absolute floor keeps near-zero steps from demanding
/// impossible relative precision.
struct GoldenTolerances {
  double div_norm_rel = 1e-5;
  double cum_div_norm_rel = 1e-5;
  double qloss_rel = 1e-4;
  double abs_floor = 1e-12;
};

/// Run `problem` with the fixed surrogate `model`, recording the
/// telemetry, then run the PCG reference for the final quality loss.
inline GoldenTrajectory record_trajectory(std::string name,
                                          const workload::InputProblem& problem,
                                          const core::TrainedModel& model) {
  GoldenTrajectory golden;
  golden.name = std::move(name);
  golden.problem_seed = problem.seed;
  golden.grid = problem.nx;
  golden.steps = problem.steps;

  core::NeuralProjection solver(&model.net, /*sink=*/nullptr,
                                model.spec.name);
  fluid::SmokeSim sim = workload::make_sim(problem);
  for (int step = 0; step < problem.steps; ++step) {
    const auto telemetry = sim.step(&solver);
    golden.div_norm.push_back(telemetry.div_norm);
    golden.cum_div_norm.push_back(telemetry.cum_div_norm);
  }

  fluid::PcgSolver pcg;
  fluid::SmokeSim reference = workload::make_sim(problem);
  for (int step = 0; step < problem.steps; ++step) {
    reference.step(&pcg);
  }
  golden.final_qloss =
      fluid::quality_loss(reference.density(), sim.density());
  return golden;
}

namespace golden_detail {

inline std::string fmt_double(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

inline std::string fmt_array(const std::vector<double>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ", ";
    out += fmt_double(xs[i]);
  }
  return out + "]";
}

/// Locate `"key":` in the document and return the text of its value up
/// to the next top-level ',' or '}' (arrays return the bracketed body).
inline std::string find_value(const std::string& doc,
                              const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = doc.find(needle);
  if (at == std::string::npos) {
    throw std::runtime_error("golden file missing key: " + key);
  }
  std::size_t i = at + needle.size();
  while (i < doc.size() && (doc[i] == ' ' || doc[i] == '\n')) ++i;
  if (i < doc.size() && doc[i] == '[') {
    const auto end = doc.find(']', i);
    if (end == std::string::npos) {
      throw std::runtime_error("golden file: unterminated array for " + key);
    }
    return doc.substr(i + 1, end - i - 1);
  }
  std::size_t end = i;
  while (end < doc.size() && doc[end] != ',' && doc[end] != '}' &&
         doc[end] != '\n') {
    ++end;
  }
  return doc.substr(i, end - i);
}

inline std::vector<double> parse_array(const std::string& body) {
  std::vector<double> out;
  std::stringstream stream(body);
  std::string token;
  while (std::getline(stream, token, ',')) {
    out.push_back(std::stod(token));
  }
  return out;
}

inline std::string strip_quotes(std::string value) {
  while (!value.empty() && (value.back() == ' ' || value.back() == '"')) {
    value.pop_back();
  }
  while (!value.empty() && (value.front() == ' ' || value.front() == '"')) {
    value.erase(value.begin());
  }
  return value;
}

/// Relative mismatch of two values over an absolute floor.
inline double rel_diff(double expected, double actual, double abs_floor) {
  const double scale = std::max(std::abs(expected), abs_floor);
  return std::abs(actual - expected) / scale;
}

}  // namespace golden_detail

inline void save_golden(const GoldenTrajectory& golden,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write golden file: " + path);
  }
  using golden_detail::fmt_array;
  using golden_detail::fmt_double;
  out << "{\n"
      << "  \"name\": \"" << golden.name << "\",\n"
      << "  \"problem_seed\": " << golden.problem_seed << ",\n"
      << "  \"grid\": " << golden.grid << ",\n"
      << "  \"steps\": " << golden.steps << ",\n"
      << "  \"final_qloss\": " << fmt_double(golden.final_qloss) << ",\n"
      << "  \"div_norm\": " << fmt_array(golden.div_norm) << ",\n"
      << "  \"cum_div_norm\": " << fmt_array(golden.cum_div_norm) << "\n"
      << "}\n";
}

inline GoldenTrajectory load_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read golden file: " + path +
                             " (regenerate with golden_test"
                             " --update-golden)");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  using namespace golden_detail;
  GoldenTrajectory golden;
  golden.name = strip_quotes(find_value(doc, "name"));
  golden.problem_seed =
      static_cast<std::uint64_t>(std::stoull(find_value(doc, "problem_seed")));
  golden.grid = std::stoi(find_value(doc, "grid"));
  golden.steps = std::stoi(find_value(doc, "steps"));
  golden.final_qloss = std::stod(find_value(doc, "final_qloss"));
  golden.div_norm = parse_array(find_value(doc, "div_norm"));
  golden.cum_div_norm = parse_array(find_value(doc, "cum_div_norm"));
  return golden;
}

/// Diff `actual` against `golden`. Returns true on match; on mismatch,
/// fills `diff` with one row per offending metric (step, expected,
/// actual, relative error, bound) so the failure is a readable table
/// instead of a wall of EXPECT output.
inline bool compare_golden(const GoldenTrajectory& golden,
                           const GoldenTrajectory& actual,
                           const GoldenTolerances& tol, util::Table* diff) {
  using golden_detail::fmt_double;
  using golden_detail::rel_diff;
  bool ok = true;
  auto row = [&](const std::string& metric, int step, double expected,
                 double got, double rel, double bound) {
    ok = false;
    diff->add_row({metric, step < 0 ? std::string("-") : std::to_string(step),
                   fmt_double(expected), fmt_double(got),
                   util::fmt_sci(rel, 2), util::fmt_sci(bound, 2)});
  };

  if (golden.steps != actual.steps ||
      golden.div_norm.size() != actual.div_norm.size() ||
      golden.cum_div_norm.size() != actual.cum_div_norm.size()) {
    row("steps", -1, golden.steps, actual.steps, 0.0, 0.0);
    return false;
  }
  for (std::size_t i = 0; i < golden.div_norm.size(); ++i) {
    const double rel =
        rel_diff(golden.div_norm[i], actual.div_norm[i], tol.abs_floor);
    if (rel > tol.div_norm_rel) {
      row("div_norm", static_cast<int>(i), golden.div_norm[i],
          actual.div_norm[i], rel, tol.div_norm_rel);
    }
  }
  for (std::size_t i = 0; i < golden.cum_div_norm.size(); ++i) {
    const double rel = rel_diff(golden.cum_div_norm[i],
                                actual.cum_div_norm[i], tol.abs_floor);
    if (rel > tol.cum_div_norm_rel) {
      row("cum_div_norm", static_cast<int>(i), golden.cum_div_norm[i],
          actual.cum_div_norm[i], rel, tol.cum_div_norm_rel);
    }
  }
  const double qloss_rel =
      rel_diff(golden.final_qloss, actual.final_qloss, tol.abs_floor);
  if (qloss_rel > tol.qloss_rel) {
    row("final_qloss", -1, golden.final_qloss, actual.final_qloss,
        qloss_rel, tol.qloss_rel);
  }
  return ok;
}

/// Fresh diff table matching compare_golden's row shape.
inline util::Table make_diff_table() {
  return util::Table(
      {"Metric", "Step", "Expected", "Actual", "RelErr", "Bound"});
}

}  // namespace sfn::test
