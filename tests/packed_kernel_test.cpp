// Tests for the SIMD microkernel layer (nn/kernels, DESIGN.md §13):
// packed-vs-naive parity, scalar-vs-SIMD bit-exactness, fused-ReLU
// epilogues, pack-cache invalidation on weight mutation and on
// SFN_CONV_ALGO flips, and the zero-allocation steady state.

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/kernels/isa.hpp"
#include "nn/network.hpp"
#include "nn/workspace.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

// ---------------------------------------------------------------------------
// Armed allocation counter (same scheme as conv_algo_test.cpp).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// ---------------------------------------------------------------------------

namespace {

using namespace sfn;
using nn::Shape;
using nn::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(shape);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

void expect_close(const Tensor& a, const Tensor& b, double rel_tol) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const double va = a[i];
    const double vb = b[i];
    const double tol = rel_tol * std::max(1.0, std::abs(va));
    ASSERT_NEAR(va, vb, tol) << "at flat index " << i;
  }
}

void expect_bit_identical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "at flat index " << i;
  }
}

struct ConvCase {
  int in_c;
  int out_c;
  int k;
  int h;
  int w;
  bool residual;
};

// Shapes chosen to exercise every microkernel edge: partial panels
// (out_c % 6 != 0), partial strips (pixels % 16 != 0), 1x1 convs (B taken
// straight from the input), the im2col chunking boundary, and residuals.
const ConvCase kCases[] = {
    {1, 1, 1, 8, 8, false},    {2, 8, 3, 16, 16, false},
    {8, 8, 3, 19, 23, true},   {16, 16, 3, 32, 32, false},
    {16, 16, 3, 17, 13, true}, {4, 6, 5, 21, 21, false},
    {8, 8, 5, 15, 33, true},   {16, 1, 1, 24, 24, false},
    {3, 5, 5, 9, 31, false},   {8, 8, 1, 19, 17, true},
    {2, 7, 3, 16, 16, false},  {8, 13, 3, 64, 64, false},
};

TEST(PackedKernel, MatchesNaiveAcrossShapes) {
  nn::Workspace ws;
  for (const auto& c : kCases) {
    SCOPED_TRACE(testing::Message()
                 << "in_c=" << c.in_c << " out_c=" << c.out_c << " k=" << c.k
                 << " h=" << c.h << " w=" << c.w << " res=" << c.residual);
    nn::Conv2D conv(c.in_c, c.out_c, c.k, c.residual);
    const Tensor input = random_tensor(
        Shape{c.in_c, c.h, c.w},
        0xbeefull ^ (static_cast<std::uint64_t>(c.out_c) << 8) ^ c.k);
    Tensor naive;
    Tensor packed;
    conv.forward_naive_into(input, naive);
    conv.forward_packed_into(input, packed, ws);
    expect_close(naive, packed, 1e-5);
  }
}

TEST(PackedKernel, ScalarAndSimdAreBitIdentical) {
  // The scalar reference accumulates with std::fmaf in the same order as
  // the SIMD kernels, so results must match bit for bit — this is what
  // lets the committed golden trajectories pass on the CI scalar leg.
  if (nn::kernels::detected_isa() == nn::kernels::Isa::kScalar) {
    GTEST_SKIP() << "no SIMD ISA on this host/build";
  }
  nn::Workspace ws;
  for (const auto& c : kCases) {
    SCOPED_TRACE(testing::Message()
                 << "in_c=" << c.in_c << " out_c=" << c.out_c << " k=" << c.k
                 << " h=" << c.h << " w=" << c.w << " res=" << c.residual);
    nn::Conv2D conv(c.in_c, c.out_c, c.k, c.residual);
    const Tensor input = random_tensor(Shape{c.in_c, c.h, c.w}, 0xf00d);

    nn::kernels::set_isa_override(nn::kernels::Isa::kScalar);
    Tensor scalar;
    conv.forward_packed_into(input, scalar, ws);
    nn::kernels::set_isa_override(nn::kernels::detected_isa());
    Tensor simd;
    conv.forward_packed_into(input, simd, ws);
    nn::kernels::reset_isa_override();

    expect_bit_identical(scalar, simd);
  }
}

TEST(PackedKernel, FusedReluMatchesSeparatePass) {
  nn::Workspace ws;
  nn::ReLU relu;
  for (const auto& c : kCases) {
    SCOPED_TRACE(testing::Message()
                 << "in_c=" << c.in_c << " out_c=" << c.out_c << " k=" << c.k);
    nn::Conv2D conv(c.in_c, c.out_c, c.k, c.residual);
    const Tensor input = random_tensor(Shape{c.in_c, c.h, c.w}, 0xfe11);

    Tensor plain;
    conv.forward_packed_into(input, plain, ws);
    Tensor separate;
    relu.forward_into(plain, separate, ws);

    Tensor fused;
    conv.forward_packed_into(input, fused, ws, nn::Precision::kFloat32,
                             /*fuse_relu=*/true);
    expect_bit_identical(separate, fused);
  }
}

TEST(PackedKernel, NetworkElidesReluAfterFusingConv) {
  // forward_inference must produce the identical result whether or not the
  // conv+ReLU fusion fires (fusion reorders nothing — ReLU lands in the
  // store epilogue).
  nn::Network net;
  net.emplace<nn::Conv2D>(2, 8, 3);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2D>(8, 8, 3, /*residual=*/true);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2D>(8, 1, 1);
  const Tensor input = random_tensor(Shape{2, 32, 32}, 0xabc);

  nn::set_conv_algo_override(nn::ConvAlgo::kPacked);
  nn::Workspace ws_fused;
  const Tensor fused = net.forward_inference(input, ws_fused);

  nn::set_conv_algo_override(nn::ConvAlgo::kIm2colGemm);  // No fused epilogue.
  nn::Workspace ws_plain;
  const Tensor plain = net.forward_inference(input, ws_plain);
  nn::set_conv_algo_override(nn::ConvAlgo::kAuto);

  expect_close(plain, fused, 1e-5);
}

TEST(PackedKernel, WeightMutationInvalidatesPack) {
  nn::Conv2D conv(4, 6, 3);
  const Tensor input = random_tensor(Shape{4, 16, 16}, 0x51);
  nn::Workspace ws;

  Tensor before;
  conv.forward_packed_into(input, before, ws);
  const auto pack_before = conv.packed(nn::Precision::kFloat32);

  conv.weight(3, 1, 0, 2) += 0.75f;
  conv.bias(5) -= 0.25f;

  Tensor naive;
  Tensor packed;
  conv.forward_naive_into(input, naive);
  conv.forward_packed_into(input, packed, ws);
  expect_close(naive, packed, 1e-5);

  const auto pack_after = conv.packed(nn::Precision::kFloat32);
  EXPECT_NE(pack_before.get(), pack_after.get())
      << "stale packed weights survived a weight mutation";
  EXPECT_GT(pack_after->revision, pack_before->revision);
}

TEST(PackedKernel, AlgoFlipMidSessionNeverUsesStalePack) {
  // Regression for the auto-selection bug class: flip SFN_CONV_ALGO
  // between forwards while also mutating weights; every forward must
  // reflect the current weights no matter which kernel serves it.
  nn::Conv2D conv(3, 9, 3);
  nn::Workspace ws;
  const Tensor input = random_tensor(Shape{3, 24, 24}, 0x71ed);

  const nn::ConvAlgo schedule[] = {
      nn::ConvAlgo::kPacked, nn::ConvAlgo::kIm2colGemm, nn::ConvAlgo::kPacked,
      nn::ConvAlgo::kNaive,  nn::ConvAlgo::kAuto,       nn::ConvAlgo::kPacked,
  };
  for (std::size_t round = 0; round < std::size(schedule); ++round) {
    SCOPED_TRACE(testing::Message() << "round " << round);
    conv.weight(static_cast<int>(round % 9), 1, 1, 1) +=
        0.1f * static_cast<float>(round + 1);
    nn::set_conv_algo_override(schedule[round]);
    Tensor out;
    conv.forward_into(input, out, ws);
    Tensor naive;
    conv.forward_naive_into(input, naive);
    expect_close(naive, out, 1e-5);
  }
  nn::set_conv_algo_override(nn::ConvAlgo::kAuto);
}

TEST(PackedKernel, SteadyStatePackedInferenceIsAllocationFree) {
  const int old_threads = omp_get_max_threads();
  omp_set_num_threads(1);

  nn::Network net;
  net.emplace<nn::Conv2D>(2, 8, 3);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2D>(8, 8, 3, /*residual=*/true);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv2D>(8, 1, 1);
  net.prepack_for_inference();

  nn::set_conv_algo_override(nn::ConvAlgo::kPacked);
  const Tensor input = random_tensor(Shape{2, 48, 48}, 0xa110c);
  nn::Workspace ws;
  for (int warm = 0; warm < 3; ++warm) {
    net.forward_inference(input, ws);
  }

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  double checksum = 0.0;
  for (int i = 0; i < 8; ++i) {
    checksum += net.forward_inference(input, ws).sum();
  }
  g_count_allocs.store(false);
  nn::set_conv_algo_override(nn::ConvAlgo::kAuto);

  EXPECT_EQ(0u, g_alloc_count.load())
      << "steady-state packed inference touched the heap";
  EXPECT_TRUE(std::isfinite(checksum));
  omp_set_num_threads(old_threads);
}

TEST(PackedKernel, RepeatedLookupsShareOneSnapshot) {
  nn::Conv2D conv(4, 8, 3);
  conv.set_precision(nn::Precision::kInt8);
  const auto before = conv.packed(conv.precision());
  // A second lookup with unchanged weights must return the same snapshot
  // (prepack_for_inference relies on this to be an idempotent no-op).
  const auto again = conv.packed(conv.precision());
  EXPECT_EQ(before.get(), again.get());
}

}  // namespace
