#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

namespace sfn {
namespace {

using nn::Network;
using nn::Shape;
using nn::Tensor;

Network small_cnn(std::uint64_t seed = 1) {
  Network net;
  net.emplace<nn::Conv2D>(2, 4, 3);
  net.emplace<nn::ReLU>();
  net.emplace<nn::MaxPool2D>(2);
  net.emplace<nn::Conv2D>(4, 4, 3);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Upsample2D>(2);
  net.emplace<nn::Conv2D>(4, 1, 3);
  util::Rng rng(seed);
  net.init_weights(rng);
  return net;
}

TEST(Network, OutputShapePropagates) {
  const Network net = small_cnn();
  EXPECT_EQ(net.output_shape(Shape{2, 16, 16}), (Shape{1, 16, 16}));
}

TEST(Network, ParamCount) {
  Network net;
  net.emplace<nn::Conv2D>(2, 4, 3);  // 2*4*9 + 4 = 76.
  net.emplace<nn::Dense>(4, 2);      // 8 + 2 = 10.
  EXPECT_EQ(net.param_count(), 86u);
}

TEST(Network, FlopsAreSumOfLayers) {
  Network net;
  net.emplace<nn::Conv2D>(1, 1, 3);
  net.emplace<nn::ReLU>();
  const Shape in{1, 8, 8};
  EXPECT_EQ(net.flops(in), 2ull * 9 * 64 + 64);
}

TEST(Network, MemoryBytesTracksParamsAndActivations) {
  Network net = small_cnn();
  const auto bytes = net.memory_bytes(Shape{2, 16, 16});
  EXPECT_GT(bytes, net.param_count() * sizeof(float));
}

TEST(Network, CloneIsDeepCopy) {
  Network a = small_cnn(5);
  Network b = a;  // Copy ctor deep-copies weights.
  const Tensor x(Shape{2, 8, 8}, 0.3f);
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  for (std::size_t k = 0; k < ya.numel(); ++k) {
    ASSERT_FLOAT_EQ(ya[k], yb[k]);
  }
  // Mutating the copy must not affect the original.
  for (auto& view : b.params()) {
    std::fill(view.values.begin(), view.values.end(), 0.0f);
  }
  const Tensor ya2 = a.forward(x, false);
  for (std::size_t k = 0; k < ya.numel(); ++k) {
    ASSERT_FLOAT_EQ(ya[k], ya2[k]);
  }
}

TEST(Network, SerializationRoundTrip) {
  Network net = small_cnn(7);
  std::stringstream buffer;
  net.save(buffer);
  Network loaded = Network::load(buffer);

  EXPECT_EQ(loaded.depth(), net.depth());
  EXPECT_EQ(loaded.param_count(), net.param_count());
  const Tensor x(Shape{2, 8, 8}, 0.25f);
  const Tensor y0 = net.forward(x, false);
  const Tensor y1 = loaded.forward(x, false);
  for (std::size_t k = 0; k < y0.numel(); ++k) {
    ASSERT_FLOAT_EQ(y0[k], y1[k]);
  }
}

TEST(Network, SerializationFileRoundTrip) {
  Network net = small_cnn(9);
  const auto path =
      std::filesystem::temp_directory_path() / "sfn_net_test.bin";
  net.save_file(path);
  Network loaded = Network::load_file(path);
  EXPECT_EQ(loaded.describe(), net.describe());
  std::filesystem::remove(path);
}

TEST(Network, LoadRejectsGarbage) {
  std::stringstream buffer;
  buffer << "not a network";
  EXPECT_THROW(Network::load(buffer), std::runtime_error);
}

TEST(Network, EraseAndInsertLayer) {
  Network net = small_cnn();
  const auto depth = net.depth();
  net.erase_layer(1);  // Remove the first ReLU.
  EXPECT_EQ(net.depth(), depth - 1);
  net.insert_layer(1, std::make_unique<nn::ReLU>());
  EXPECT_EQ(net.depth(), depth);
  EXPECT_THROW(net.erase_layer(100), std::out_of_range);
  EXPECT_THROW(net.insert_layer(100, std::make_unique<nn::ReLU>()),
               std::out_of_range);
}

TEST(Network, DescribeListsLayers) {
  const Network net = small_cnn();
  const std::string desc = net.describe();
  EXPECT_NE(desc.find("Conv2D(2->4, k3)"), std::string::npos);
  EXPECT_NE(desc.find("MaxPool2D"), std::string::npos);
  EXPECT_NE(desc.find("Upsample2D"), std::string::npos);
}

TEST(Optimizer, SgdReducesQuadraticLoss) {
  // Fit y = 2x with a single Dense(1,1).
  Network net;
  net.emplace<nn::Dense>(1, 1);
  util::Rng rng(3);
  net.init_weights(rng);
  nn::Sgd sgd(0.05, 0.0);

  double first_loss = -1.0;
  double last_loss = -1.0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    double epoch_loss = 0.0;
    net.zero_grads();
    for (float xv : {-1.0f, 0.5f, 1.0f, 2.0f}) {
      Tensor x(Shape{1, 1, 1});
      x[0] = xv;
      Tensor target(Shape{1, 1, 1});
      target[0] = 2.0f * xv;
      const Tensor pred = net.forward(x, true);
      const auto loss = nn::mse_loss(pred, target);
      epoch_loss += loss.value;
      net.backward(loss.grad);
    }
    sgd.step(net, 4.0);
    if (epoch == 0) first_loss = epoch_loss;
    last_loss = epoch_loss;
  }
  EXPECT_LT(last_loss, first_loss * 1e-3);
}

TEST(Optimizer, AdamConvergesFasterThanPlainSgdHere) {
  auto train = [](nn::Optimizer& opt) {
    Network net;
    net.emplace<nn::Dense>(2, 1);
    util::Rng rng(4);
    net.init_weights(rng);
    double loss_value = 0.0;
    for (int step = 0; step < 150; ++step) {
      Tensor x(Shape{1, 1, 2});
      x[0] = 1.0f;
      x[1] = -0.5f;
      Tensor target(Shape{1, 1, 1});
      target[0] = 3.0f;
      net.zero_grads();
      const Tensor pred = net.forward(x, true);
      const auto loss = nn::mse_loss(pred, target);
      loss_value = loss.value;
      net.backward(loss.grad);
      opt.step(net, 1.0);
    }
    return loss_value;
  };
  nn::Adam adam(0.05);
  nn::Sgd sgd(0.001, 0.0);  // Deliberately timid.
  EXPECT_LT(train(adam), train(sgd));
}

TEST(Optimizer, ZeroGradsClearsAccumulation) {
  Network net;
  net.emplace<nn::Dense>(2, 1);
  Tensor x(Shape{1, 1, 2}, 1.0f);
  Tensor target(Shape{1, 1, 1}, 0.0f);
  const Tensor pred = net.forward(x, true);
  net.backward(nn::mse_loss(pred, target).grad);
  bool any_nonzero = false;
  for (auto& view : net.params()) {
    for (float g : view.grads) {
      if (g != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  net.zero_grads();
  for (auto& view : net.params()) {
    for (float g : view.grads) {
      EXPECT_FLOAT_EQ(g, 0.0f);
    }
  }
}

}  // namespace
}  // namespace sfn
