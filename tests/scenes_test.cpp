// Adversarial scene families (workload/scenes.hpp) and the fluid-layer
// capabilities behind them: inflow cells with prescribed face velocities,
// rigid-body moving obstacles re-rasterised and pinned each step, and the
// scene-hash coverage that keeps the serving result cache from returning
// stale fields for problems that differ only in motion or inflow rate.

#include "fluid/pcg.hpp"
#include "fluid/scene.hpp"
#include "serve/scene_hash.hpp"
#include "serve/session_server.hpp"
#include "serve_test_support.hpp"
#include "workload/scenes.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

namespace sfn {
namespace {

using workload::SceneFamily;

bool all_finite(const fluid::GridF& g) {
  for (std::size_t k = 0; k < g.size(); ++k) {
    if (!std::isfinite(g[k])) {
      return false;
    }
  }
  return true;
}

double total_density(const fluid::GridF& g) {
  double sum = 0.0;
  for (std::size_t k = 0; k < g.size(); ++k) {
    sum += g[k];
  }
  return sum;
}

// --- Rigid-body helpers ---------------------------------------------------

TEST(ObstacleMotion, PoseAtAdvancesCentreAndAngle) {
  fluid::Obstacle ob;
  ob.cx = 0.5;
  ob.cy = 0.4;
  ob.angle = 0.1;
  ob.vx = 0.2;
  ob.vy = -0.1;
  ob.omega = 1.5;
  const auto posed = ob.pose_at(2.0);
  EXPECT_DOUBLE_EQ(posed.cx, 0.9);
  EXPECT_DOUBLE_EQ(posed.cy, 0.2);
  EXPECT_DOUBLE_EQ(posed.angle, 3.1);
  // Motion parameters survive the pose so velocity_at stays meaningful.
  EXPECT_DOUBLE_EQ(posed.omega, 1.5);
  EXPECT_TRUE(posed.is_moving());
  EXPECT_FALSE(fluid::Obstacle{}.is_moving());
}

TEST(ObstacleMotion, VelocityAtIsRigidBodyField) {
  fluid::Obstacle ob;
  ob.cx = 0.5;
  ob.cy = 0.5;
  ob.vx = 0.1;
  ob.omega = 2.0;
  // Point directly above the centre: rotation adds -omega * dy to u.
  const auto [u, v] = ob.velocity_at(0.5, 0.7);
  EXPECT_DOUBLE_EQ(u, 0.1 - 2.0 * 0.2);
  EXPECT_DOUBLE_EQ(v, 0.0);
  // Point to the right of the centre: rotation adds +omega * dx to v.
  const auto [u2, v2] = ob.velocity_at(0.8, 0.5);
  EXPECT_DOUBLE_EQ(u2, 0.1);
  EXPECT_DOUBLE_EQ(v2, 2.0 * 0.3);
}

// --- Scene-hash sensitivity (result-cache correctness) --------------------

class SceneHashSensitivity : public ::testing::Test {
 protected:
  static std::uint64_t hash_of(const workload::InputProblem& problem) {
    static const core::OfflineArtifacts artifacts =
        test::make_test_artifacts();
    return serve::scene_hash_fixed(problem, artifacts.library[0], {});
  }
};

TEST_F(SceneHashSensitivity, ObstacleVelocityChangesHash) {
  const auto base =
      workload::make_scene(SceneFamily::kMovingObstacle, 42, {16, 12});
  ASSERT_FALSE(base.obstacles.empty());

  auto spin = base;
  spin.obstacles[0].omega += 0.25;
  EXPECT_NE(hash_of(base), hash_of(spin));

  auto drift = base;
  drift.obstacles[0].vx += 0.01;
  EXPECT_NE(hash_of(base), hash_of(drift));

  auto lift = base;
  lift.obstacles[0].vy += 0.01;
  EXPECT_NE(hash_of(base), hash_of(lift));
}

TEST_F(SceneHashSensitivity, InflowRateAndSmokeChangeHash) {
  const auto base =
      workload::make_scene(SceneFamily::kShearLayer, 42, {16, 12});
  ASSERT_FALSE(base.inflows.empty());

  auto faster = base;
  faster.inflows[0].u += 0.1;
  EXPECT_NE(hash_of(base), hash_of(faster));

  auto smokier = base;
  smokier.inflows[0].smoke += 0.5;
  EXPECT_NE(hash_of(base), hash_of(smokier));

  auto moved = base;
  moved.inflows[0].y1 += 0.05;
  EXPECT_NE(hash_of(base), hash_of(moved));
}

TEST_F(SceneHashSensitivity, EdgesAndVorticesChangeHash) {
  const auto base =
      workload::make_scene(SceneFamily::kVortexRing, 42, {16, 12});
  ASSERT_FALSE(base.vortices.empty());

  auto stronger = base;
  stronger.vortices[0].strength += 0.2;
  EXPECT_NE(hash_of(base), hash_of(stronger));

  auto opened = base;
  opened.edges.right = workload::EdgeType::kOpen;
  EXPECT_NE(hash_of(base), hash_of(opened));
}

TEST_F(SceneHashSensitivity, FamiliesNeverCollideOnTheSameSeed) {
  const workload::SceneParams params{16, 12};
  const auto families = workload::all_scene_families();
  for (std::size_t a = 0; a < families.size(); ++a) {
    for (std::size_t b = a + 1; b < families.size(); ++b) {
      EXPECT_NE(hash_of(workload::make_scene(families[a], 9, params)),
                hash_of(workload::make_scene(families[b], 9, params)))
          << workload::to_string(families[a]) << " vs "
          << workload::to_string(families[b]);
    }
  }
}

// --- Inflow boundaries ----------------------------------------------------

TEST(InflowScenes, CellsArePinnedToPrescribedVelocityAndFeedSmoke) {
  const auto problem =
      workload::make_scene(SceneFamily::kShearLayer, 7, {16, 12});
  auto sim = workload::make_sim(problem);
  const auto& flags = sim.flags();
  const double dx = 1.0 / sim.nx();

  int inflow_cells = 0;
  int pinned_faces = 0;
  for (int j = 0; j < sim.ny(); ++j) {
    for (int i = 0; i < sim.nx(); ++i) {
      if (!flags.is_inflow(i, j)) {
        continue;
      }
      ++inflow_cells;
      const fluid::InflowRegion* region =
          fluid::inflow_region_at(problem.inflows, i, j, dx);
      ASSERT_NE(region, nullptr) << "stamped cell without a region";
      // The band holds its smoke payload.
      EXPECT_FLOAT_EQ(sim.density()(i, j),
                      static_cast<float>(region->smoke));
      // The face toward a fluid neighbour carries the prescribed u.
      if (flags.is_fluid(i + 1, j)) {
        EXPECT_FLOAT_EQ(sim.velocity().u()(i + 1, j),
                        static_cast<float>(region->u));
        ++pinned_faces;
      }
    }
  }
  EXPECT_GT(inflow_cells, 0);
  EXPECT_GT(pinned_faces, 0);

  // Stepping with the exact solver: the inlet keeps injecting smoke and
  // momentum, the open right edge absorbs it, everything stays finite.
  fluid::PcgSolver pcg;
  const double before = total_density(sim.density());
  for (int s = 0; s < 6; ++s) {
    const auto telemetry = sim.step(&pcg);
    EXPECT_TRUE(telemetry.solve.converged) << "step " << s;
  }
  EXPECT_GT(total_density(sim.density()), before)
      << "inflow must add smoke to the domain";
  EXPECT_TRUE(all_finite(sim.density()));
  EXPECT_TRUE(all_finite(sim.velocity().u()));
  EXPECT_TRUE(all_finite(sim.velocity().v()));
}

// --- Moving obstacles -----------------------------------------------------

workload::InputProblem manual_rotor_problem() {
  workload::InputProblem problem;
  problem.seed = 77;
  problem.nx = 24;
  problem.ny = 24;
  problem.steps = 10;
  fluid::Obstacle rotor;
  rotor.kind = fluid::Obstacle::Kind::kBox;
  rotor.cx = 0.5;
  rotor.cy = 0.55;
  rotor.rx = 0.16;
  rotor.ry = 0.06;
  rotor.omega = 1.5;
  problem.obstacles = {rotor};
  return problem;
}

TEST(MovingObstacleScenes, FlagsFollowTheMotionAndDensityStaysOut) {
  const auto problem = manual_rotor_problem();
  auto sim = workload::make_sim(problem);
  const fluid::FlagGrid initial = sim.flags();

  fluid::PcgSolver pcg;
  bool flags_changed = false;
  for (int s = 0; s < 6; ++s) {
    sim.step(&pcg);
    flags_changed = flags_changed || !(sim.flags() == initial);
    for (int j = 0; j < sim.ny(); ++j) {
      for (int i = 0; i < sim.nx(); ++i) {
        if (sim.flags().at(i, j) == fluid::CellType::kSolid) {
          EXPECT_EQ(sim.density()(i, j), 0.0f)
              << "smoke inside a solid at step " << s;
        }
      }
    }
  }
  EXPECT_TRUE(flags_changed)
      << "a rotating box must re-rasterise to different flags";
  EXPECT_TRUE(all_finite(sim.density()));
}

TEST(MovingObstacleScenes, SolidFacesCarryRigidBodyVelocity) {
  const auto problem = manual_rotor_problem();
  auto sim = workload::make_sim(problem);
  fluid::PcgSolver pcg;
  const int steps = 5;
  for (int s = 0; s < steps; ++s) {
    sim.step(&pcg);
  }
  // The last step rasterised and pinned the pose at t = (steps-1) * dt.
  const auto posed =
      problem.obstacles[0].pose_at((steps - 1) * problem.sim.dt);
  const auto& flags = sim.flags();
  const double dx = 1.0 / sim.nx();

  int checked = 0;
  for (int j = 1; j < sim.ny() - 1; ++j) {
    for (int i = 1; i < sim.nx(); ++i) {
      const bool left_solid = flags.at(i - 1, j) == fluid::CellType::kSolid;
      const bool right_solid = flags.at(i, j) == fluid::CellType::kSolid;
      if (left_solid == right_solid) {
        continue;  // Interior or fully solid face.
      }
      // Restrict to faces whose solid side is the rotor: static wall
      // faces (the domain border here) stay pinned to zero instead.
      const int si = left_solid ? i - 1 : i;
      if (si == 0 || si == sim.nx() - 1) {
        continue;
      }
      const double fx = i * dx;
      const double fy = (j + 0.5) * dx;
      const auto expected =
          static_cast<float>(posed.velocity_at(fx, fy).first);
      EXPECT_FLOAT_EQ(sim.velocity().u()(i, j), expected)
          << "u face " << i << "," << j;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0) << "the rotor must expose solid-fluid faces";
}

// --- Every family is solvable end-to-end ----------------------------------

TEST(SceneFamilies, AllFamiliesProduceSolvableProblems) {
  fluid::PcgSolver pcg;
  for (const SceneFamily family : workload::all_scene_families()) {
    for (const std::uint64_t seed : {1u, 2u}) {
      const auto problem =
          workload::make_scene(family, seed, {16, 8});
      auto sim = workload::make_sim(problem);
      EXPECT_GT(sim.flags().count_fluid(), 0)
          << workload::to_string(family);
      // At least one Dirichlet (empty or open) cell keeps the Poisson
      // system non-singular.
      int dirichlet = 0;
      for (int j = 0; j < sim.ny(); ++j) {
        for (int i = 0; i < sim.nx(); ++i) {
          dirichlet += sim.flags().is_empty(i, j) ? 1 : 0;
        }
      }
      EXPECT_GT(dirichlet, 0) << workload::to_string(family);

      for (int s = 0; s < 4; ++s) {
        const auto telemetry = sim.step(&pcg);
        EXPECT_TRUE(telemetry.solve.converged)
            << workload::to_string(family) << " seed " << seed << " step "
            << s;
      }
      EXPECT_TRUE(all_finite(sim.density())) << workload::to_string(family);
      EXPECT_TRUE(all_finite(sim.velocity().u()))
          << workload::to_string(family);
      EXPECT_TRUE(all_finite(sim.velocity().v()))
          << workload::to_string(family);
    }
  }
}

// --- Served-vs-solo bit identity (acceptance criterion) -------------------

TEST(SceneFamilies, ServedCoopSchedulerMatchesSoloBitwise) {
  const auto artifacts = test::make_test_artifacts();
  serve::ServerConfig config;
  config.sched = serve::ServerConfig::Sched::kCoop;
  config.session_threads = 2;
  config.slice_steps = 1;
  serve::SessionServer server(config);

  std::vector<workload::InputProblem> problems;
  for (const SceneFamily family : workload::all_scene_families()) {
    problems.push_back(workload::make_scene(family, 777, {16, 10}));
  }
  std::vector<serve::SessionServer::JobId> ids;
  for (const auto& problem : problems) {
    ids.push_back(server.submit_adaptive(problem, artifacts));
  }
  for (std::size_t p = 0; p < problems.size(); ++p) {
    const auto served = server.wait(ids[p]);
    const auto solo = core::run_adaptive(problems[p], artifacts);
    const std::string label =
        workload::to_string(workload::all_scene_families()[p]);
    ASSERT_EQ(solo.final_density.size(), served.final_density.size())
        << label;
    for (std::size_t k = 0; k < solo.final_density.size(); ++k) {
      const float a = solo.final_density[k];
      const float b = served.final_density[k];
      ASSERT_EQ(std::memcmp(&a, &b, sizeof(float)), 0)
          << label << " cell " << k << ": " << a << " vs " << b;
    }
    EXPECT_EQ(solo.model_per_step, served.model_per_step) << label;
    EXPECT_EQ(solo.restarted_with_pcg, served.restarted_with_pcg) << label;
    EXPECT_EQ(solo.quarantined_models, served.quarantined_models) << label;
  }
}

}  // namespace
}  // namespace sfn
