#include "fluid/multigrid.hpp"
#include "fluid/operators.hpp"
#include "fluid/pcg.hpp"
#include "fluid/relaxation.hpp"
#include "util/rng.hpp"
#include "workload/obstacles.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace sfn {
namespace {

using fluid::CellType;
using fluid::FlagGrid;
using fluid::GridF;
using fluid::MacGrid2;
using fluid::PcgParams;
using fluid::PcgSolver;
using fluid::Preconditioner;

FlagGrid open_box(int n) {
  FlagGrid flags(n, n, CellType::kFluid);
  flags.set_smoke_box_boundary();
  return flags;
}

GridF random_rhs(const FlagGrid& flags, std::uint64_t seed) {
  util::Rng rng(seed);
  GridF rhs(flags.nx(), flags.ny(), 0.0f);
  for (int j = 0; j < flags.ny(); ++j) {
    for (int i = 0; i < flags.nx(); ++i) {
      if (flags.is_fluid(i, j)) {
        rhs(i, j) = static_cast<float>(rng.uniform(-0.1, 0.1));
      }
    }
  }
  return rhs;
}

TEST(Pcg, SolvesToTolerance) {
  const FlagGrid flags = open_box(32);
  const GridF rhs = random_rhs(flags, 1);
  GridF p(32, 32, 0.0f);
  PcgSolver solver;
  const auto stats = solver.solve(flags, rhs, &p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(stats.residual, 1e-6);
  EXPECT_LE(fluid::poisson_residual(flags, rhs, p), 1e-6);
  EXPECT_GT(stats.iterations, 0);
  EXPECT_GT(stats.flops, 0u);
}

TEST(Pcg, WarmStartConvergesInstantly) {
  const FlagGrid flags = open_box(24);
  const GridF rhs = random_rhs(flags, 2);
  GridF p(24, 24, 0.0f);
  PcgSolver solver;
  solver.solve(flags, rhs, &p);
  // Re-solving from the solution should take zero iterations.
  const auto stats = solver.solve(flags, rhs, &p);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0);
}

TEST(Pcg, MicPreconditionerBeatsPlainCg) {
  const FlagGrid flags = open_box(48);
  const GridF rhs = random_rhs(flags, 3);

  GridF p1(48, 48, 0.0f);
  PcgParams mic;
  mic.preconditioner = Preconditioner::kMIC0;
  PcgSolver mic_solver(mic);
  const auto mic_stats = mic_solver.solve(flags, rhs, &p1);

  GridF p2(48, 48, 0.0f);
  PcgParams none;
  none.preconditioner = Preconditioner::kNone;
  PcgSolver cg_solver(none);
  const auto cg_stats = cg_solver.solve(flags, rhs, &p2);

  EXPECT_TRUE(mic_stats.converged);
  EXPECT_TRUE(cg_stats.converged);
  EXPECT_LT(mic_stats.iterations, cg_stats.iterations);
}

TEST(Pcg, HandlesObstacles) {
  FlagGrid flags = open_box(32);
  workload::Obstacle ob;
  ob.kind = workload::Obstacle::Kind::kCircle;
  ob.cx = 0.5;
  ob.cy = 0.5;
  ob.rx = ob.ry = 0.2;
  workload::rasterize_obstacles({ob}, &flags);
  ASSERT_LT(flags.count_fluid(), 30 * 30);

  const GridF rhs = random_rhs(flags, 4);
  GridF p(32, 32, 0.0f);
  PcgSolver solver;
  const auto stats = solver.solve(flags, rhs, &p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(fluid::poisson_residual(flags, rhs, p), 1e-6);
  // Pressure is zero outside fluid.
  EXPECT_FLOAT_EQ(p(16, 16), 0.0f);
}

TEST(Pcg, ZeroRhsGivesZeroSolution) {
  const FlagGrid flags = open_box(16);
  const GridF rhs(16, 16, 0.0f);
  GridF p(16, 16, 0.0f);
  PcgSolver solver;
  const auto stats = solver.solve(flags, rhs, &p);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0);
  EXPECT_DOUBLE_EQ(p.max_abs(), 0.0);
}

TEST(Jacobi, ConvergesOnSmallGrid) {
  const FlagGrid flags = open_box(16);
  const GridF rhs = random_rhs(flags, 5);
  GridF p(16, 16, 0.0f);
  fluid::RelaxationParams params;
  params.tolerance = 1e-5;
  fluid::JacobiSolver solver(params);
  const auto stats = solver.solve(flags, rhs, &p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(fluid::poisson_residual(flags, rhs, p), 1e-5);
}

TEST(GaussSeidel, ConvergesFasterThanJacobi) {
  const FlagGrid flags = open_box(24);
  const GridF rhs = random_rhs(flags, 6);
  fluid::RelaxationParams params;
  params.tolerance = 1e-5;

  GridF pj(24, 24, 0.0f);
  fluid::JacobiSolver jacobi(params);
  const auto js = jacobi.solve(flags, rhs, &pj);

  GridF pg(24, 24, 0.0f);
  fluid::GaussSeidelSolver gs(params);
  const auto gss = gs.solve(flags, rhs, &pg);

  EXPECT_TRUE(js.converged);
  EXPECT_TRUE(gss.converged);
  EXPECT_LT(gss.iterations, js.iterations);
}

TEST(Multigrid, ConvergesAndMatchesPcg) {
  const FlagGrid flags = open_box(32);
  const GridF rhs = random_rhs(flags, 7);

  GridF pmg(32, 32, 0.0f);
  fluid::MultigridSolver mg;
  const auto mg_stats = mg.solve(flags, rhs, &pmg);
  EXPECT_TRUE(mg_stats.converged);
  EXPECT_LE(fluid::poisson_residual(flags, rhs, pmg), 1e-6);

  GridF ppcg(32, 32, 0.0f);
  PcgSolver pcg;
  pcg.solve(flags, rhs, &ppcg);

  // The system is nonsingular (Dirichlet top row): solutions must agree.
  double max_diff = 0.0;
  for (int j = 0; j < 32; ++j) {
    for (int i = 0; i < 32; ++i) {
      max_diff = std::max(
          max_diff, std::abs(static_cast<double>(pmg(i, j)) - ppcg(i, j)));
    }
  }
  EXPECT_LT(max_diff, 1e-3);
}

TEST(Multigrid, BeatsGaussSeidelAtEqualSweepBudget) {
  // The coarse correction must buy accuracy: at a matched smoothing
  // budget, damped V-cycles reach a (much) lower residual than plain
  // red-black Gauss-Seidel.
  const FlagGrid flags = open_box(64);
  const GridF rhs = random_rhs(flags, 8);

  fluid::MultigridParams mg_params;
  mg_params.tolerance = 0.0;  // Run exactly max_cycles.
  mg_params.max_cycles = 20;
  GridF pmg(64, 64, 0.0f);
  fluid::MultigridSolver mg(mg_params);
  mg.solve(flags, rhs, &pmg);
  const double mg_residual = fluid::poisson_residual(flags, rhs, pmg);

  // 20 cycles x (3 pre + 3 post) fine sweeps = 120 sweeps; give GS the
  // same fine-grid budget.
  GridF pgs(64, 64, 0.0f);
  for (int s = 0; s < 120; ++s) {
    fluid::rbgs_sweep(flags, rhs, &pgs);
  }
  const double gs_residual = fluid::poisson_residual(flags, rhs, pgs);
  EXPECT_LT(mg_residual, 0.5 * gs_residual);
}

TEST(Multigrid, CoarsenFlagsSemantics) {
  FlagGrid fine(4, 4, CellType::kSolid);
  fine.set(0, 0, CellType::kFluid);   // -> coarse (0,0) fluid.
  fine.set(2, 2, CellType::kEmpty);   // -> coarse (1,1) empty.
  const auto coarse = fluid::coarsen_flags(fine);
  EXPECT_EQ(coarse.nx(), 2);
  EXPECT_EQ(coarse.at(0, 0), CellType::kFluid);
  EXPECT_EQ(coarse.at(1, 1), CellType::kEmpty);
  EXPECT_EQ(coarse.at(1, 0), CellType::kSolid);
}

// ---------------------------------------------------------------------------
// Property sweep: every solver produces the same pressure (the system is
// nonsingular) across grid sizes and preconditioners.

struct SolverCase {
  std::string name;
  std::function<std::unique_ptr<fluid::PoissonSolver>()> make;
};

class SolverAgreement
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SolverAgreement, AllPreconditionersAgree) {
  const int n = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  const FlagGrid flags = open_box(n);
  const GridF rhs = random_rhs(flags, static_cast<std::uint64_t>(seed));

  GridF reference(n, n, 0.0f);
  PcgParams ref_params;
  ref_params.tolerance = 1e-8;
  PcgSolver ref(ref_params);
  ASSERT_TRUE(ref.solve(flags, rhs, &reference).converged);

  for (auto pre : {Preconditioner::kNone, Preconditioner::kJacobi,
                   Preconditioner::kIC0, Preconditioner::kMIC0}) {
    PcgParams params;
    params.preconditioner = pre;
    params.tolerance = 1e-8;
    PcgSolver solver(params);
    GridF p(n, n, 0.0f);
    ASSERT_TRUE(solver.solve(flags, rhs, &p).converged)
        << solver.name() << " n=" << n;
    double max_diff = 0.0;
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        max_diff = std::max(
            max_diff, std::abs(static_cast<double>(p(i, j)) - reference(i, j)));
      }
    }
    EXPECT_LT(max_diff, 5e-4) << solver.name() << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(GridsAndSeeds, SolverAgreement,
                         ::testing::Combine(::testing::Values(16, 24, 32),
                                            ::testing::Values(11, 22, 33)));

}  // namespace
}  // namespace sfn
