#include "modelgen/arch_spec.hpp"

#include <gtest/gtest.h>

namespace sfn {
namespace {

using modelgen::ArchSpec;
using modelgen::StageSpec;

TEST(ArchSpec, TompsonHasFiveConvReluStages) {
  const ArchSpec spec = modelgen::tompson_spec();
  EXPECT_EQ(spec.stages.size(), 5u);
  EXPECT_EQ(spec.in_channels, 2);
  EXPECT_EQ(spec.out_channels, 1);
  for (const auto& s : spec.stages) {
    EXPECT_EQ(s.kernel, 3);
    EXPECT_TRUE(s.relu);
  }
  EXPECT_TRUE(modelgen::validate(spec).empty());
}

TEST(ArchSpec, YangIsMuchCheaperThanTompson) {
  util::Rng rng(1);
  auto tompson = modelgen::build_network(modelgen::tompson_spec(), rng);
  auto yang = modelgen::build_network(modelgen::yang_spec(), rng);
  const nn::Shape in{2, 32, 32};
  EXPECT_LT(yang.flops(in) * 4, tompson.flops(in));
}

TEST(ArchSpec, ValidateCatchesBadSpecs) {
  ArchSpec spec = modelgen::tompson_spec();
  spec.stages.clear();
  EXPECT_FALSE(modelgen::validate(spec).empty());

  spec = modelgen::tompson_spec();
  spec.stages[0].kernel = 4;
  EXPECT_FALSE(modelgen::validate(spec).empty());

  spec = modelgen::tompson_spec();
  spec.stages[0].channels = 0;
  EXPECT_FALSE(modelgen::validate(spec).empty());

  spec = modelgen::tompson_spec();
  spec.stages[0].pool = 2;  // Never unpooled.
  EXPECT_FALSE(modelgen::validate(spec).empty());

  spec = modelgen::tompson_spec();
  spec.stages[0].unpool = 2;  // Upsamples past input resolution.
  EXPECT_FALSE(modelgen::validate(spec).empty());

  spec = modelgen::tompson_spec();
  spec.stages.resize(1);
  spec.stages[0].dropout = 1.0;
  EXPECT_FALSE(modelgen::validate(spec).empty());
}

TEST(ArchSpec, ValidateAcceptsPooledPair) {
  ArchSpec spec = modelgen::tompson_spec();
  spec.stages[2].pool = 2;
  spec.stages[2].unpool = 2;
  EXPECT_TRUE(modelgen::validate(spec).empty());
  EXPECT_EQ(spec.net_scale(), 1);
  EXPECT_EQ(spec.required_divisor(), 2);
}

TEST(ArchSpec, NetworkOutputIsFullResolution) {
  ArchSpec spec = modelgen::tompson_spec();
  spec.stages[1].pool = 2;
  spec.stages[1].unpool = 2;
  util::Rng rng(2);
  auto net = modelgen::build_network(spec, rng);
  EXPECT_EQ(net.output_shape(nn::Shape{2, 16, 16}), (nn::Shape{1, 16, 16}));
}

TEST(ArchSpec, BuildRejectsInvalid) {
  ArchSpec spec = modelgen::tompson_spec();
  spec.stages[0].pool = 3;
  util::Rng rng(3);
  EXPECT_THROW(modelgen::build_network(spec, rng), std::invalid_argument);
}

TEST(ArchSpec, NeuronCountWeighsResolution) {
  ArchSpec flat;
  flat.stages = {StageSpec{.channels = 8}};
  ArchSpec pooled;
  pooled.stages = {StageSpec{.channels = 8, .pool = 2, .unpool = 2}};
  // Pooling quarters the spatial resolution of the stage.
  EXPECT_DOUBLE_EQ(flat.neuron_count(), 8.0);
  EXPECT_DOUBLE_EQ(pooled.neuron_count(), 2.0);
}

TEST(ArchSpec, LayerCountIncludesProjection) {
  EXPECT_EQ(modelgen::tompson_spec().layer_count(), 6);
  EXPECT_EQ(modelgen::yang_spec().layer_count(), 2);
}

TEST(ArchSpec, ResidualStageBuildsWhenChannelsMatch) {
  ArchSpec spec;
  spec.stages = {StageSpec{.channels = 4},
                 StageSpec{.channels = 4, .residual = true}};
  util::Rng rng(4);
  auto net = modelgen::build_network(spec, rng);
  const std::string desc = net.describe();
  EXPECT_NE(desc.find("ResConv2D"), std::string::npos);
}

TEST(ArchSpec, DescribeMentionsEveryStage) {
  ArchSpec spec = modelgen::tompson_spec();
  spec.stages[2].pool = 2;
  spec.stages[2].unpool = 2;
  spec.stages[4].dropout = 0.1;
  const std::string desc = spec.describe();
  EXPECT_NE(desc.find("p2"), std::string::npos);
  EXPECT_NE(desc.find("u2"), std::string::npos);
  EXPECT_NE(desc.find("d0.1"), std::string::npos);
}

TEST(ArchSpec, EqualityIgnoresName) {
  ArchSpec a = modelgen::tompson_spec();
  ArchSpec b = modelgen::tompson_spec();
  b.name = "other";
  EXPECT_TRUE(a == b);
  b.stages[0].channels += 1;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace sfn
