// Structured event-log tests: schema round-trip through a real file,
// escaping, the non-finite-double guard, size-bounded rotation, and an
// end-to-end validation of a written log by tools/check_trace.py
// --eventlog (the same check CI runs against serve_demo's log).

#include "obs/eventlog.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

namespace sfn {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(EventLog, DisabledBuilderIsInert) {
  obs::eventlog_close();
  EXPECT_FALSE(obs::eventlog_enabled());
  // Field calls on a disabled builder must be free of side effects.
  obs::Event("ignored").field("key", "value").field("n", 7);
}

TEST(EventLog, SchemaRoundTrip) {
  const std::string path = temp_path("sfn_eventlog_roundtrip.jsonl");
  obs::eventlog_open(path);
  ASSERT_TRUE(obs::eventlog_enabled());

  obs::Event("guard_trip")
      .field("session", "job-1")
      .field("step", 7)
      .field("ok", true)
      .field("residual", 0.25);
  {
    // Destructor emission: the builder writes on scope exit too.
    obs::Event event("session_end");
    event.field("job", std::uint64_t{42}).field("ok", false);
  }
  obs::eventlog_close();
  EXPECT_FALSE(obs::eventlog_enabled());

  const auto lines = obs::eventlog_read_lines(path);
  ASSERT_EQ(lines.size(), 3u);

  // First line: the meta record with build provenance.
  EXPECT_TRUE(contains(lines[0], "\"type\":\"meta\"")) << lines[0];
  EXPECT_TRUE(contains(lines[0], "\"ts\":")) << lines[0];
  EXPECT_TRUE(contains(lines[0], "\"git_sha\":\"")) << lines[0];
  EXPECT_TRUE(contains(lines[0], "\"build_type\":\"")) << lines[0];
  EXPECT_TRUE(contains(lines[0], "\"sanitize\":\"")) << lines[0];
  EXPECT_TRUE(contains(lines[0], "\"check_numerics\":\"")) << lines[0];

  // Second line: every field kind serialized with its JSON type.
  EXPECT_TRUE(lines[1].rfind("{\"type\":\"guard_trip\",\"ts\":", 0) == 0)
      << lines[1];
  EXPECT_TRUE(contains(lines[1], "\"session\":\"job-1\"")) << lines[1];
  EXPECT_TRUE(contains(lines[1], "\"step\":7")) << lines[1];
  EXPECT_TRUE(contains(lines[1], "\"ok\":true")) << lines[1];
  EXPECT_TRUE(contains(lines[1], "\"residual\":0.25")) << lines[1];
  EXPECT_EQ(lines[1].back(), '}');

  EXPECT_TRUE(contains(lines[2], "\"type\":\"session_end\"")) << lines[2];
  EXPECT_TRUE(contains(lines[2], "\"job\":42")) << lines[2];
  EXPECT_TRUE(contains(lines[2], "\"ok\":false")) << lines[2];
}

TEST(EventLog, NonFiniteDoublesBecomeNull) {
  const std::string path = temp_path("sfn_eventlog_nonfinite.jsonl");
  obs::eventlog_open(path);
  obs::Event("guard_trip")
      .field("nan_residual", std::numeric_limits<double>::quiet_NaN())
      .field("inf_residual", std::numeric_limits<double>::infinity())
      .field("finite", 1.5);
  obs::eventlog_close();

  const auto lines = obs::eventlog_read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(contains(lines[1], "\"nan_residual\":null")) << lines[1];
  EXPECT_TRUE(contains(lines[1], "\"inf_residual\":null")) << lines[1];
  EXPECT_TRUE(contains(lines[1], "\"finite\":1.5")) << lines[1];
  // No bare non-finite tokens in value position (keys may contain them).
  EXPECT_FALSE(contains(lines[1], ":nan")) << lines[1];
  EXPECT_FALSE(contains(lines[1], ":inf")) << lines[1];
}

TEST(EventLog, StringsAreEscapedToOneLine) {
  const std::string path = temp_path("sfn_eventlog_escape.jsonl");
  obs::eventlog_open(path);
  obs::Event("session_rejected")
      .field("why", "quote \" backslash \\ newline \n tab \t end");
  obs::eventlog_close();

  const auto lines = obs::eventlog_read_lines(path);
  // A raw newline in a value would split the record across lines.
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(contains(
      lines[1], "quote \\\" backslash \\\\ newline \\n tab \\t end"))
      << lines[1];
}

TEST(EventLog, RotationBoundsTheFileAndRewritesMeta) {
  const std::string path = temp_path("sfn_eventlog_rotate.jsonl");
  const std::string backup = path + ".1";
  std::filesystem::remove(backup);
  // ~524-byte cap: a handful of ~110-byte lines per generation.
  const double max_mb = 0.0005;
  obs::eventlog_open(path, max_mb);
  const std::string pad(48, 'x');
  for (int i = 0; i < 40; ++i) {
    obs::Event("rotation_probe").field("seq", i).field("pad", pad);
  }
  obs::eventlog_close();

  const auto max_bytes =
      static_cast<std::uintmax_t>(max_mb * 1024.0 * 1024.0);
  ASSERT_TRUE(std::filesystem::exists(path));
  ASSERT_TRUE(std::filesystem::exists(backup));
  EXPECT_LE(std::filesystem::file_size(path), max_bytes);
  EXPECT_LE(std::filesystem::file_size(backup), max_bytes);

  // Both generations stay machine-parseable: meta first, then events.
  for (const std::string& file : {backup, path}) {
    const auto lines = obs::eventlog_read_lines(file);
    ASSERT_GE(lines.size(), 2u) << file;
    EXPECT_TRUE(contains(lines[0], "\"type\":\"meta\"")) << file;
    for (const auto& line : lines) {
      EXPECT_TRUE(line.front() == '{' && line.back() == '}') << line;
      EXPECT_TRUE(contains(line, "\"ts\":")) << line;
    }
  }
}

TEST(EventLog, ReopenReplacesTheSink) {
  const std::string first = temp_path("sfn_eventlog_first.jsonl");
  const std::string second = temp_path("sfn_eventlog_second.jsonl");
  obs::eventlog_open(first);
  obs::Event("session_start").field("job", 1);
  obs::eventlog_open(second);
  obs::Event("session_start").field("job", 2);
  obs::eventlog_close();

  EXPECT_EQ(obs::eventlog_read_lines(first).size(), 2u);
  const auto lines = obs::eventlog_read_lines(second);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(contains(lines[1], "\"job\":2")) << lines[1];
}

TEST(EventLog, CheckTraceToolAcceptsTheLog) {
  if (std::system("python3 --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 unavailable";
  }
  const std::string path = temp_path("sfn_eventlog_checked.jsonl");
  obs::eventlog_open(path);
  obs::Event("session_start").field("job", 1).field("mode", "adaptive");
  obs::Event("guard_trip").field("relative_residual", 3.5);
  obs::Event("session_end").field("job", 1).field("ok", true);
  obs::eventlog_close();

  const std::string cmd = std::string("python3 \"") + SFN_TOOLS_DIR +
                          "/check_trace.py\" --eventlog \"" + path +
                          "\" --expect-type guard_trip "
                          "--expect-type session_end --min-events 4";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
}

}  // namespace
}  // namespace sfn
